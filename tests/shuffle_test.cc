#include "src/core/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "src/core/cost_model.h"
#include "src/gen/powerlaw_graph.h"
#include "src/util/rng.h"

namespace fm {
namespace {

CsrGraph TestGraph(Vid n) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  return GeneratePowerLawGraph(config);
}

std::vector<Vid> RandomWalkers(Wid count, Vid n, uint64_t seed,
                               double dead_fraction = 0.0) {
  std::vector<Vid> w(count);
  XorShiftRng rng(seed);
  for (Wid j = 0; j < count; ++j) {
    w[j] = (dead_fraction > 0 && rng.NextDouble() < dead_fraction)
               ? kInvalidVid
               : static_cast<Vid>(rng.NextBounded(n));
  }
  return w;
}

// A hand-built bin tiling (independent of BuildShufflePlan's geometry
// heuristics) so the equivalence tests exercise arbitrary bin cuts, including
// degenerate single-vp bins.
ShufflePlan ManualShufflePlan(const PartitionPlan& plan, uint32_t bins,
                              uint32_t buffer_records = 32) {
  ShufflePlan sp;
  const uint32_t nv = plan.num_vps();
  bins = std::min(bins, nv);
  for (uint32_t b = 0; b < bins; ++b) {
    sp.bin_first_vp.push_back(b * nv / bins);
  }
  sp.bin_first_vp.push_back(nv);
  sp.buffer_records = buffer_records;
  sp.recommended = ShuffleBackendKind::kBinned;
  return sp;
}

class ShuffleTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    graph_ = TestGraph(20000);
    plan_ = PartitionPlan::BuildUniform(graph_, GetParam(), SamplePolicy::kDS);
    pool_ = std::make_unique<ThreadPool>(3);
  }

  std::unique_ptr<Shuffler> MakeBinned(const ShufflePlan* sp,
                                       ThreadPool* pool = nullptr) {
    ShuffleConfig config;
    config.kind = ShuffleBackendKind::kBinned;
    config.shuffle_plan = sp;
    auto shuffler = std::make_unique<Shuffler>(
        &plan_, pool != nullptr ? pool : pool_.get(), config);
    shuffler->AttachArena(&arena_);
    return shuffler;
  }

  CsrGraph graph_;
  PartitionPlan plan_;
  std::unique_ptr<ThreadPool> pool_;
  ShuffleArena arena_;
};

TEST_P(ShuffleTest, ScatterIsGroupedPermutation) {
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 50000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 1);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);

  // Multiset equality.
  auto ws = w;
  auto sws = sw;
  std::sort(ws.begin(), ws.end());
  std::sort(sws.begin(), sws.end());
  EXPECT_EQ(ws, sws);

  // Grouping: each VP chunk contains only its own vertices.
  const auto& offs = shuffler.vp_offsets();
  ASSERT_EQ(offs.size(), plan_.num_vps() + 2);
  for (uint32_t vp = 0; vp < plan_.num_vps(); ++vp) {
    for (Wid j = offs[vp]; j < offs[vp + 1]; ++j) {
      ASSERT_EQ(plan_.VpOf(sw[j]), vp);
    }
  }
}

TEST_P(ShuffleTest, OrderWithinPartitionFollowsScanOrder) {
  // Within a VP chunk, elements produced by one scan chunk must appear in scan
  // order (the implicit-identity invariant of §4.3). With a single-thread pool the
  // whole chunk is one scan, so the order must match a stable partition of W.
  ThreadPool serial(1);
  Shuffler shuffler(&plan_, &serial);
  const Wid n = 20000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 2);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);

  std::vector<std::vector<Vid>> expected(plan_.num_vps());
  for (Wid j = 0; j < n; ++j) {
    expected[plan_.VpOf(w[j])].push_back(w[j]);
  }
  const auto& offs = shuffler.vp_offsets();
  for (uint32_t vp = 0; vp < plan_.num_vps(); ++vp) {
    std::vector<Vid> got(sw.begin() + offs[vp], sw.begin() + offs[vp + 1]);
    ASSERT_EQ(got, expected[vp]) << "vp " << vp;
  }
}

TEST_P(ShuffleTest, GatherInvertsScatter) {
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 40000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 3);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  // Without modifying SW, gather must reproduce W exactly.
  std::vector<Vid> w_next(n);
  ASSERT_TRUE(
      shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr)
          .ok());
  EXPECT_EQ(w_next, w);
}

TEST_P(ShuffleTest, GatherRoutesUpdatedValuesToRightWalkers) {
  // Tag each SW slot with a value derived from its content, then check each walker
  // receives the tag of its own element.
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 30000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 4);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  for (Wid p = 0; p < n; ++p) {
    sw[p] = sw[p] + 1;  // "sample": next = cur + 1
  }
  std::vector<Vid> w_next(n);
  ASSERT_TRUE(
      shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr)
          .ok());
  for (Wid j = 0; j < n; ++j) {
    ASSERT_EQ(w_next[j], w[j] + 1) << j;
  }
}

TEST_P(ShuffleTest, AuxStreamFollowsSamePermutation) {
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 20000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 5);
  // aux[j] encodes j so we can detect the permutation directly.
  std::vector<Vid> aux(n);
  for (Wid j = 0; j < n; ++j) {
    aux[j] = static_cast<Vid>(j);
  }
  std::vector<Vid> sw(n), sw_aux(n);
  shuffler.Scatter(w.data(), aux.data(), n, sw.data(), sw_aux.data());
  for (Wid p = 0; p < n; ++p) {
    ASSERT_EQ(sw[p], w[sw_aux[p]]);
  }
}

TEST_P(ShuffleTest, DeadWalkersParkInDeadBin) {
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 30000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 6, /*dead_fraction=*/0.3);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  Wid dead_expected = std::count(w.begin(), w.end(), kInvalidVid);
  EXPECT_EQ(shuffler.dead_count(), dead_expected);
  const auto& offs = shuffler.vp_offsets();
  for (Wid p = offs[plan_.num_vps()]; p < offs[plan_.num_vps() + 1]; ++p) {
    ASSERT_EQ(sw[p], kInvalidVid);
  }
  // Round trip keeps them dead and everyone else intact.
  std::vector<Vid> w_next(n);
  ASSERT_TRUE(
      shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr)
          .ok());
  EXPECT_EQ(w_next, w);
}

TEST_P(ShuffleTest, TwoLevelLayoutMatchesDirect) {
  Shuffler direct(&plan_, pool_.get());
  Shuffler two_level(&plan_, pool_.get());
  const Wid n = 25000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 7, 0.05);
  std::vector<Vid> aux(n);
  for (Wid j = 0; j < n; ++j) {
    aux[j] = static_cast<Vid>(j * 2654435761u);
  }
  std::vector<Vid> sw_a(n), aux_a(n), sw_b(n), aux_b(n);
  direct.Scatter(w.data(), aux.data(), n, sw_a.data(), aux_a.data());
  two_level.ScatterTwoLevelForTest(w.data(), aux.data(), n, sw_b.data(),
                                   aux_b.data());
  EXPECT_EQ(sw_a, sw_b);
  EXPECT_EQ(aux_a, aux_b);
}

TEST_P(ShuffleTest, BinnedLayoutIsBitIdenticalToDirect) {
  // The acceptance bar of the backend seam: the binned path must reproduce the
  // direct layout bit-for-bit — SW, aux, vp_offsets, dead count — across bin
  // tilings and buffer capacities (including tiny buffers that force many
  // partial-line drains).
  Shuffler direct(&plan_, pool_.get());
  const Wid n = 40000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 9, /*dead_fraction=*/0.1);
  std::vector<Vid> aux(n);
  for (Wid j = 0; j < n; ++j) {
    aux[j] = static_cast<Vid>(j * 2654435761u);
  }
  std::vector<Vid> sw_a(n), aux_a(n);
  direct.Scatter(w.data(), aux.data(), n, sw_a.data(), aux_a.data());

  for (uint32_t bins : {1u, 3u, plan_.num_vps()}) {
    for (uint32_t buffer_records : {16u, 32u, 128u}) {
      ShufflePlan sp = ManualShufflePlan(plan_, bins, buffer_records);
      auto binned = MakeBinned(&sp);
      ASSERT_EQ(binned->backend_kind(), ShuffleBackendKind::kBinned);
      std::vector<Vid> sw_b(n), aux_b(n);
      binned->Scatter(w.data(), aux.data(), n, sw_b.data(), aux_b.data());
      ASSERT_EQ(sw_b, sw_a) << "bins=" << bins << " cap=" << buffer_records;
      ASSERT_EQ(aux_b, aux_a) << "bins=" << bins << " cap=" << buffer_records;
      ASSERT_EQ(binned->vp_offsets(), direct.vp_offsets());
      ASSERT_EQ(binned->dead_count(), direct.dead_count());
      if (bins > 1 && buffer_records <= 32) {
        EXPECT_GT(binned->last_scatter_stats().flushed_lines, 0u);
      }
    }
  }
}

TEST_P(ShuffleTest, BinnedGatherRoundTripMatchesDirect) {
  Shuffler direct(&plan_, pool_.get());
  ShufflePlan sp = ManualShufflePlan(plan_, 4);
  auto binned = MakeBinned(&sp);
  const Wid n = 30000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 10, /*dead_fraction=*/0.2);

  std::vector<Vid> sw_a(n), sw_b(n);
  direct.Scatter(w.data(), nullptr, n, sw_a.data(), nullptr);
  binned->Scatter(w.data(), nullptr, n, sw_b.data(), nullptr);
  ASSERT_EQ(sw_b, sw_a);
  // "Sample" both SWs identically, then both gathers must route the same
  // updated value to the same walker slot.
  for (Wid p = 0; p < n; ++p) {
    if (sw_a[p] != kInvalidVid) {
      sw_a[p] = sw_a[p] * 2 + 1;
      sw_b[p] = sw_b[p] * 2 + 1;
    }
  }
  std::vector<Vid> next_a(n), next_b(n);
  ASSERT_TRUE(
      direct.Gather(w.data(), n, sw_a.data(), next_a.data(), nullptr, nullptr)
          .ok());
  ASSERT_TRUE(
      binned->Gather(w.data(), n, sw_b.data(), next_b.data(), nullptr, nullptr)
          .ok());
  EXPECT_EQ(next_b, next_a);
  for (Wid j = 0; j < n; ++j) {
    ASSERT_EQ(next_b[j], w[j] == kInvalidVid ? kInvalidVid : w[j] * 2 + 1) << j;
  }
}

TEST_P(ShuffleTest, BinnedArenaIsReusedAcrossCalls) {
  ShufflePlan sp = ManualShufflePlan(plan_, 4);
  auto binned = MakeBinned(&sp);
  auto w_big = RandomWalkers(40000, graph_.num_vertices(), 11);
  std::vector<Vid> sw(40000), w_next(40000);
  binned->Scatter(w_big.data(), nullptr, 40000, sw.data(), nullptr);
  ASSERT_TRUE(binned
                  ->Gather(w_big.data(), 40000, sw.data(), w_next.data(),
                           nullptr, nullptr)
                  .ok());
  const size_t cap_after_big = arena_.capacity_vids();
  EXPECT_GT(cap_after_big, 0u);
  // A smaller episode through the same arena must not grow it, and the round
  // trip must still be exact.
  auto w_small = RandomWalkers(5000, graph_.num_vertices(), 12);
  binned->Scatter(w_small.data(), nullptr, 5000, sw.data(), nullptr);
  ASSERT_TRUE(binned
                  ->Gather(w_small.data(), 5000, sw.data(), w_next.data(),
                           nullptr, nullptr)
                  .ok());
  EXPECT_EQ(std::vector<Vid>(w_next.begin(), w_next.begin() + 5000), w_small);
  EXPECT_EQ(arena_.capacity_vids(), cap_after_big);
}

TEST_P(ShuffleTest, GatherWalkerCountMismatchIsAnError) {
  // A gather over a different walker count than the last scatter cannot be a
  // bijection; both backends must report it as a structured error (not abort —
  // the engine turns it into a crash with context, library callers may not).
  const Wid n = 10000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 13);
  std::vector<Vid> sw(n), w_next(n);

  Shuffler direct(&plan_, pool_.get());
  direct.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  Status st =
      direct.Gather(w.data(), n - 1, sw.data(), w_next.data(), nullptr, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("9999"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("10000"), std::string::npos) << st.message();

  ShufflePlan sp = ManualShufflePlan(plan_, 2);
  auto binned = MakeBinned(&sp);
  binned->Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  st = binned->Gather(w.data(), n + 1, sw.data(), w_next.data(), nullptr,
                      nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The failed gather must not have poisoned the shuffle state: the correct
  // replay still works.
  ASSERT_TRUE(
      binned->Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr)
          .ok());
  EXPECT_EQ(w_next, w);
}

TEST_P(ShuffleTest, SimulatedReplayTouchesOnlyKnownArrays) {
  // The cachesim replay must stay inside the arrays the real pass touches —
  // a loose pointer here silently corrupts the Fig 1b attribution.
  const Wid n = 20000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 14, 0.1);
  std::vector<Vid> sw(n), w_next(n);
  ShufflePlan sp = ManualShufflePlan(plan_, 3);
  for (ShuffleBackendKind kind :
       {ShuffleBackendKind::kDirect, ShuffleBackendKind::kBinned}) {
    ShuffleConfig config;
    config.kind = kind;
    config.shuffle_plan = &sp;
    Shuffler shuffler(&plan_, pool_.get(), config);
    shuffler.AttachArena(&arena_);
    shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
    uint64_t accesses = 0;
    auto count = [&accesses](const void* p, uint32_t bytes) {
      ASSERT_NE(p, nullptr);
      ASSERT_GT(bytes, 0u);
      ++accesses;
    };
    shuffler.SimulateScatter(w.data(), nullptr, n, sw.data(), nullptr, count);
    EXPECT_GE(accesses, static_cast<uint64_t>(n)) << ShuffleBackendName(kind);
    ASSERT_TRUE(
        shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr)
            .ok());
    accesses = 0;
    shuffler.SimulateGather(w.data(), n, sw.data(), nullptr, w_next.data(),
                            nullptr, count);
    EXPECT_GE(accesses, static_cast<uint64_t>(n)) << ShuffleBackendName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(FanoutSweep, ShuffleTest,
                         ::testing::Values(1, 4, 64, 1024));

TEST(ShuffleInternalGroupTest, RoundTripWithInternalShuffle) {
  // Force a plan with internal shuffles via a tight fan-out budget, then verify the
  // full scatter/gather round trip.
  CsrGraph g = TestGraph(60000);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 32;
  config.max_partitions = 36;
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 8, model, config);
  if (!plan.has_internal_shuffle()) {
    GTEST_SKIP() << "cost model chose no internal shuffle on this instance";
  }
  ThreadPool pool(3);
  Shuffler shuffler(&plan, &pool);
  const Wid n = 50000;
  auto w = RandomWalkers(n, g.num_vertices(), 8);
  std::vector<Vid> sw(n), w_next(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  const auto& offs = shuffler.vp_offsets();
  for (uint32_t vp = 0; vp < plan.num_vps(); ++vp) {
    for (Wid j = offs[vp]; j < offs[vp + 1]; ++j) {
      ASSERT_EQ(plan.VpOf(sw[j]), vp);
    }
  }
  ASSERT_TRUE(
      shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr)
          .ok());
  EXPECT_EQ(w_next, w);
}

TEST(ShuffleInternalGroupTest, BinnedMatchesDirectOnInternalShufflePlan) {
  // The binned backend replaces the two-level path wholesale — it must still
  // produce the identical layout on plans that would have used it.
  CsrGraph g = TestGraph(60000);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 32;
  config.max_partitions = 36;
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 8, model, config);
  if (!plan.has_internal_shuffle()) {
    GTEST_SKIP() << "cost model chose no internal shuffle on this instance";
  }
  ThreadPool pool(3);
  const Wid n = 50000;
  auto w = RandomWalkers(n, g.num_vertices(), 15, 0.05);
  std::vector<Vid> aux(n);
  for (Wid j = 0; j < n; ++j) {
    aux[j] = static_cast<Vid>(j);
  }
  std::vector<Vid> sw_a(n), aux_a(n), sw_b(n), aux_b(n);
  Shuffler direct(&plan, &pool);
  direct.Scatter(w.data(), aux.data(), n, sw_a.data(), aux_a.data());

  ShufflePlan sp = BuildShufflePlan(plan, g, n, CacheInfo{}, 3);
  ShuffleConfig cfg;
  cfg.kind = ShuffleBackendKind::kBinned;
  cfg.shuffle_plan = &sp;
  Shuffler binned(&plan, &pool, cfg);
  ShuffleArena arena;
  binned.AttachArena(&arena);
  binned.Scatter(w.data(), aux.data(), n, sw_b.data(), aux_b.data());
  EXPECT_EQ(sw_b, sw_a);
  EXPECT_EQ(aux_b, aux_a);
  std::vector<Vid> next_a(n), next_b(n);
  ASSERT_TRUE(
      direct.Gather(w.data(), n, sw_a.data(), next_a.data(), nullptr, nullptr)
          .ok());
  ASSERT_TRUE(
      binned.Gather(w.data(), n, sw_b.data(), next_b.data(), nullptr, nullptr)
          .ok());
  EXPECT_EQ(next_a, w);
  EXPECT_EQ(next_b, w);
}

TEST(ShuffleEdgeCaseTest, EmptyAndSingleWalker) {
  CsrGraph g = TestGraph(1000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 8, SamplePolicy::kDS);
  ThreadPool pool(2);
  Shuffler shuffler(&plan, &pool);
  shuffler.Scatter(nullptr, nullptr, 0, nullptr, nullptr);
  EXPECT_EQ(shuffler.vp_offsets().back(), 0u);

  std::vector<Vid> w{42}, sw(1), w_next(1);
  shuffler.Scatter(w.data(), nullptr, 1, sw.data(), nullptr);
  EXPECT_EQ(sw[0], 42u);
  ASSERT_TRUE(
      shuffler.Gather(w.data(), 1, sw.data(), w_next.data(), nullptr, nullptr)
          .ok());
  EXPECT_EQ(w_next[0], 42u);
}

TEST(ShuffleEdgeCaseTest, BinnedEmptyAndSingleWalker) {
  CsrGraph g = TestGraph(1000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 8, SamplePolicy::kDS);
  ThreadPool pool(2);
  ShufflePlan sp;
  sp.bin_first_vp = {0, plan.num_vps() / 2, plan.num_vps()};
  sp.buffer_records = 16;
  ShuffleConfig cfg;
  cfg.kind = ShuffleBackendKind::kBinned;
  cfg.shuffle_plan = &sp;
  Shuffler shuffler(&plan, &pool, cfg);
  ShuffleArena arena;
  shuffler.AttachArena(&arena);
  shuffler.Scatter(nullptr, nullptr, 0, nullptr, nullptr);
  EXPECT_EQ(shuffler.vp_offsets().back(), 0u);

  std::vector<Vid> w{42}, sw(1), w_next(1);
  shuffler.Scatter(w.data(), nullptr, 1, sw.data(), nullptr);
  EXPECT_EQ(sw[0], 42u);
  ASSERT_TRUE(
      shuffler.Gather(w.data(), 1, sw.data(), w_next.data(), nullptr, nullptr)
          .ok());
  EXPECT_EQ(w_next[0], 42u);
}

TEST(ShuffleAutoTest, AutoResolvesToConcreteBackend) {
  CsrGraph g = TestGraph(5000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 16, SamplePolicy::kDS);
  ThreadPool pool(2);
  // Auto without a plan: direct.
  ShuffleConfig bare;
  bare.kind = ShuffleBackendKind::kAuto;
  Shuffler fallback(&plan, &pool, bare);
  EXPECT_EQ(fallback.backend_kind(), ShuffleBackendKind::kDirect);
  // Auto with a plan: whatever the plan recommends.
  ShufflePlan sp = BuildShufflePlan(plan, g, 1 << 16, CacheInfo{}, 2);
  ShuffleConfig cfg;
  cfg.kind = ShuffleBackendKind::kAuto;
  cfg.shuffle_plan = &sp;
  Shuffler auto_shuffler(&plan, &pool, cfg);
  EXPECT_EQ(auto_shuffler.backend_kind(), sp.recommended);
}

}  // namespace
}  // namespace fm
