#include "src/core/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/core/cost_model.h"
#include "src/gen/powerlaw_graph.h"
#include "src/util/rng.h"

namespace fm {
namespace {

CsrGraph TestGraph(Vid n) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  return GeneratePowerLawGraph(config);
}

std::vector<Vid> RandomWalkers(Wid count, Vid n, uint64_t seed,
                               double dead_fraction = 0.0) {
  std::vector<Vid> w(count);
  XorShiftRng rng(seed);
  for (Wid j = 0; j < count; ++j) {
    w[j] = (dead_fraction > 0 && rng.NextDouble() < dead_fraction)
               ? kInvalidVid
               : static_cast<Vid>(rng.NextBounded(n));
  }
  return w;
}

class ShuffleTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    graph_ = TestGraph(20000);
    plan_ = PartitionPlan::BuildUniform(graph_, GetParam(), SamplePolicy::kDS);
    pool_ = std::make_unique<ThreadPool>(3);
  }
  CsrGraph graph_;
  PartitionPlan plan_;
  std::unique_ptr<ThreadPool> pool_;
};

TEST_P(ShuffleTest, ScatterIsGroupedPermutation) {
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 50000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 1);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);

  // Multiset equality.
  auto ws = w;
  auto sws = sw;
  std::sort(ws.begin(), ws.end());
  std::sort(sws.begin(), sws.end());
  EXPECT_EQ(ws, sws);

  // Grouping: each VP chunk contains only its own vertices.
  const auto& offs = shuffler.vp_offsets();
  ASSERT_EQ(offs.size(), plan_.num_vps() + 2);
  for (uint32_t vp = 0; vp < plan_.num_vps(); ++vp) {
    for (Wid j = offs[vp]; j < offs[vp + 1]; ++j) {
      ASSERT_EQ(plan_.VpOf(sw[j]), vp);
    }
  }
}

TEST_P(ShuffleTest, OrderWithinPartitionFollowsScanOrder) {
  // Within a VP chunk, elements produced by one scan chunk must appear in scan
  // order (the implicit-identity invariant of §4.3). With a single-thread pool the
  // whole chunk is one scan, so the order must match a stable partition of W.
  ThreadPool serial(1);
  Shuffler shuffler(&plan_, &serial);
  const Wid n = 20000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 2);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);

  std::vector<std::vector<Vid>> expected(plan_.num_vps());
  for (Wid j = 0; j < n; ++j) {
    expected[plan_.VpOf(w[j])].push_back(w[j]);
  }
  const auto& offs = shuffler.vp_offsets();
  for (uint32_t vp = 0; vp < plan_.num_vps(); ++vp) {
    std::vector<Vid> got(sw.begin() + offs[vp], sw.begin() + offs[vp + 1]);
    ASSERT_EQ(got, expected[vp]) << "vp " << vp;
  }
}

TEST_P(ShuffleTest, GatherInvertsScatter) {
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 40000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 3);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  // Without modifying SW, gather must reproduce W exactly.
  std::vector<Vid> w_next(n);
  shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr);
  EXPECT_EQ(w_next, w);
}

TEST_P(ShuffleTest, GatherRoutesUpdatedValuesToRightWalkers) {
  // Tag each SW slot with a value derived from its content, then check each walker
  // receives the tag of its own element.
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 30000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 4);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  for (Wid p = 0; p < n; ++p) {
    sw[p] = sw[p] + 1;  // "sample": next = cur + 1
  }
  std::vector<Vid> w_next(n);
  shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr);
  for (Wid j = 0; j < n; ++j) {
    ASSERT_EQ(w_next[j], w[j] + 1) << j;
  }
}

TEST_P(ShuffleTest, AuxStreamFollowsSamePermutation) {
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 20000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 5);
  // aux[j] encodes j so we can detect the permutation directly.
  std::vector<Vid> aux(n);
  for (Wid j = 0; j < n; ++j) {
    aux[j] = static_cast<Vid>(j);
  }
  std::vector<Vid> sw(n), sw_aux(n);
  shuffler.Scatter(w.data(), aux.data(), n, sw.data(), sw_aux.data());
  for (Wid p = 0; p < n; ++p) {
    ASSERT_EQ(sw[p], w[sw_aux[p]]);
  }
}

TEST_P(ShuffleTest, DeadWalkersParkInDeadBin) {
  Shuffler shuffler(&plan_, pool_.get());
  const Wid n = 30000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 6, /*dead_fraction=*/0.3);
  std::vector<Vid> sw(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  Wid dead_expected = std::count(w.begin(), w.end(), kInvalidVid);
  EXPECT_EQ(shuffler.dead_count(), dead_expected);
  const auto& offs = shuffler.vp_offsets();
  for (Wid p = offs[plan_.num_vps()]; p < offs[plan_.num_vps() + 1]; ++p) {
    ASSERT_EQ(sw[p], kInvalidVid);
  }
  // Round trip keeps them dead and everyone else intact.
  std::vector<Vid> w_next(n);
  shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr);
  EXPECT_EQ(w_next, w);
}

TEST_P(ShuffleTest, TwoLevelLayoutMatchesDirect) {
  Shuffler direct(&plan_, pool_.get());
  Shuffler two_level(&plan_, pool_.get());
  const Wid n = 25000;
  auto w = RandomWalkers(n, graph_.num_vertices(), 7, 0.05);
  std::vector<Vid> aux(n);
  for (Wid j = 0; j < n; ++j) {
    aux[j] = static_cast<Vid>(j * 2654435761u);
  }
  std::vector<Vid> sw_a(n), aux_a(n), sw_b(n), aux_b(n);
  direct.Scatter(w.data(), aux.data(), n, sw_a.data(), aux_a.data());
  two_level.ScatterTwoLevelForTest(w.data(), aux.data(), n, sw_b.data(),
                                   aux_b.data());
  EXPECT_EQ(sw_a, sw_b);
  EXPECT_EQ(aux_a, aux_b);
}

INSTANTIATE_TEST_SUITE_P(FanoutSweep, ShuffleTest,
                         ::testing::Values(1, 4, 64, 1024));

TEST(ShuffleInternalGroupTest, RoundTripWithInternalShuffle) {
  // Force a plan with internal shuffles via a tight fan-out budget, then verify the
  // full scatter/gather round trip.
  CsrGraph g = TestGraph(60000);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 32;
  config.max_partitions = 36;
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 8, model, config);
  if (!plan.has_internal_shuffle()) {
    GTEST_SKIP() << "cost model chose no internal shuffle on this instance";
  }
  ThreadPool pool(3);
  Shuffler shuffler(&plan, &pool);
  const Wid n = 50000;
  auto w = RandomWalkers(n, g.num_vertices(), 8);
  std::vector<Vid> sw(n), w_next(n);
  shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
  const auto& offs = shuffler.vp_offsets();
  for (uint32_t vp = 0; vp < plan.num_vps(); ++vp) {
    for (Wid j = offs[vp]; j < offs[vp + 1]; ++j) {
      ASSERT_EQ(plan.VpOf(sw[j]), vp);
    }
  }
  shuffler.Gather(w.data(), n, sw.data(), w_next.data(), nullptr, nullptr);
  EXPECT_EQ(w_next, w);
}

TEST(ShuffleEdgeCaseTest, EmptyAndSingleWalker) {
  CsrGraph g = TestGraph(1000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 8, SamplePolicy::kDS);
  ThreadPool pool(2);
  Shuffler shuffler(&plan, &pool);
  shuffler.Scatter(nullptr, nullptr, 0, nullptr, nullptr);
  EXPECT_EQ(shuffler.vp_offsets().back(), 0u);

  std::vector<Vid> w{42}, sw(1), w_next(1);
  shuffler.Scatter(w.data(), nullptr, 1, sw.data(), nullptr);
  EXPECT_EQ(sw[0], 42u);
  shuffler.Gather(w.data(), 1, sw.data(), w_next.data(), nullptr, nullptr);
  EXPECT_EQ(w_next[0], 42u);
}

}  // namespace
}  // namespace fm
