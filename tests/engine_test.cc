#include "src/core/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "src/core/algorithms/deepwalk.h"
#include "src/core/algorithms/node2vec.h"
#include "src/gen/powerlaw_graph.h"
#include "src/gen/uniform_degree.h"
#include "src/graph/degree_sort.h"
#include "src/graph/edge_io.h"
#include "tests/test_util.h"

namespace fm {
namespace {

CsrGraph SkewedGraph(Vid n, uint64_t seed = 1) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  config.degrees.max_degree = n / 8;
  config.seed = seed;
  return GeneratePowerLawGraph(config);
}

WalkSpec SmallSpec(Wid walkers, uint32_t steps, uint64_t seed = 1) {
  WalkSpec spec;
  spec.num_walkers = walkers;
  spec.steps = steps;
  spec.seed = seed;
  return spec;
}

TEST(EngineTest, RequiresDegreeSortedGraph) {
  GraphBuilder b(3);
  b.AddEdge(2, 0);
  b.AddEdge(2, 1);
  b.AddEdge(0, 2);
  CsrGraph g = b.Build();
  EXPECT_DEATH(FlashMobEngine engine(g), "degree-sorted");
}

TEST(EngineTest, PathsAreValidWalks) {
  CsrGraph g = SkewedGraph(5000);
  FlashMobEngine engine(g);
  WalkResult result = engine.Run(SmallSpec(10000, 12));
  EXPECT_EQ(result.paths.num_walkers(), 10000u);
  EXPECT_EQ(result.stats.total_steps, 10000u * 12);
  EXPECT_TRUE(result.paths.ValidAgainst(g));
}

TEST(EngineTest, DeterministicForSameSeed) {
  CsrGraph g = SkewedGraph(2000);
  FlashMobEngine a(g), b(g);
  WalkResult ra = a.Run(SmallSpec(5000, 8, 42));
  WalkResult rb = b.Run(SmallSpec(5000, 8, 42));
  for (uint32_t s = 0; s <= 8; ++s) {
    ASSERT_EQ(ra.paths.Row(s), rb.paths.Row(s)) << "step " << s;
  }
  WalkResult rc = a.Run(SmallSpec(5000, 8, 43));
  EXPECT_NE(ra.paths.Row(8), rc.paths.Row(8));
}

TEST(EngineTest, VisitCountsMatchPaths) {
  CsrGraph g = SkewedGraph(3000);
  FlashMobEngine engine(g);
  WalkResult result = engine.Run(SmallSpec(6000, 10));
  EXPECT_EQ(result.visit_counts, result.paths.VisitCounts(g.num_vertices()));
}

TEST(EngineTest, EpisodesSplitUnderDramBudget) {
  CsrGraph g = SkewedGraph(2000);
  EngineOptions options;
  options.dram_budget_bytes = 1 << 20;  // 1 MB: forces multiple episodes
  FlashMobEngine engine(g, options);
  WalkSpec spec = SmallSpec(100000, 5);
  Wid per_episode = engine.EpisodeWalkers(spec);
  EXPECT_LT(per_episode, 100000u);
  WalkResult result = engine.Run(spec);
  EXPECT_GT(result.stats.episodes, 1u);
  EXPECT_EQ(result.paths.num_walkers(), 100000u);
  EXPECT_EQ(result.stats.total_steps, 100000u * 5);
  EXPECT_TRUE(result.paths.ValidAgainst(g));
}

TEST(EngineTest, NoPathsModeStillCountsVisits) {
  CsrGraph g = SkewedGraph(3000);
  FlashMobEngine engine(g);
  WalkSpec spec = SmallSpec(5000, 10);
  spec.keep_paths = false;
  WalkResult result = engine.Run(spec);
  EXPECT_EQ(result.paths.num_walkers(), 0u);
  uint64_t total = 0;
  for (uint64_t c : result.visit_counts) {
    total += c;
  }
  EXPECT_EQ(total, 5000u * 11);  // start + 10 steps per walker
}

TEST(EngineTest, StationaryDistributionOnCompleteGraph) {
  // On a complete graph the walk's stationary distribution is uniform; visit
  // shares must converge there regardless of partitioning machinery.
  CsrGraph g = CompleteGraph(32);
  FlashMobEngine engine(g);
  WalkSpec spec = SmallSpec(20000, 20);
  spec.keep_paths = false;
  WalkResult result = engine.Run(spec);
  uint64_t total = 0;
  for (uint64_t c : result.visit_counts) {
    total += c;
  }
  for (uint64_t c : result.visit_counts) {
    EXPECT_NEAR(static_cast<double>(c) / total, 1.0 / 32, 0.005);
  }
}

TEST(EngineTest, DegreeProportionalInitialPlacement) {
  // Walkers seed "uniformly among all edges": start counts ~ degree.
  CsrGraph g = DegreeSort(StarGraph(64)).graph;  // hub degree 63, leaves 1
  FlashMobEngine engine(g);
  WalkSpec spec = SmallSpec(126000, 1);
  WalkResult result = engine.Run(spec);
  uint64_t hub_starts = 0;
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    hub_starts += result.paths.At(w, 0) == 0;
  }
  EXPECT_NEAR(static_cast<double>(hub_starts) / 126000, 0.5, 0.02);
}

TEST(EngineTest, InjectedUniformPlansWork) {
  CsrGraph g = SkewedGraph(4000);
  for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
    FlashMobEngine engine(g);
    engine.SetPlan(PartitionPlan::BuildUniform(g, 32, policy));
    WalkResult result = engine.Run(SmallSpec(8000, 8));
    EXPECT_TRUE(result.paths.ValidAgainst(g));
  }
}

TEST(EngineTest, PsAndDsPlansGiveSameDistribution) {
  // Same graph, same workload, different sampling policies: visit distributions
  // must agree statistically (correlate far better than chance).
  CsrGraph g = SkewedGraph(2000);
  WalkSpec spec = SmallSpec(40000, 10, 7);
  spec.keep_paths = false;

  FlashMobEngine ps_engine(g);
  ps_engine.SetPlan(PartitionPlan::BuildUniform(g, 16, SamplePolicy::kPS));
  auto ps = ps_engine.Run(spec).visit_counts;

  FlashMobEngine ds_engine(g);
  ds_engine.SetPlan(PartitionPlan::BuildUniform(g, 16, SamplePolicy::kDS));
  auto ds = ds_engine.Run(spec).visit_counts;

  double max_rel_diff = 0;
  for (Vid v = 0; v < 100; ++v) {  // top vertices have high counts: tight stats
    double a = static_cast<double>(ps[v]);
    double b = static_cast<double>(ds[v]);
    max_rel_diff = std::max(max_rel_diff, std::abs(a - b) / std::max(a, b));
  }
  EXPECT_LT(max_rel_diff, 0.15);
}

TEST(EngineTest, Node2VecPathsValid) {
  CsrGraph g = SkewedGraph(2000);
  FlashMobEngine engine(g);
  WalkSpec spec = SmallSpec(4000, 8);
  spec.algorithm = WalkAlgorithm::kNode2Vec;
  spec.node2vec = {0.5, 2.0};
  WalkResult result = engine.Run(spec);
  EXPECT_TRUE(result.paths.ValidAgainst(g));
}

TEST(EngineTest, Node2VecAvoidsBacktrackingWithHighP) {
  // With p >> 1 returning to the predecessor is heavily penalized.
  CsrGraph g = CompleteGraph(8);
  FlashMobEngine engine(g);
  WalkSpec spec = SmallSpec(20000, 6);
  spec.algorithm = WalkAlgorithm::kNode2Vec;
  spec.node2vec = {100.0, 1.0};
  WalkResult result = engine.Run(spec);
  uint64_t backtracks = 0;
  uint64_t transitions = 0;
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    for (uint32_t s = 2; s <= 6; ++s) {
      ++transitions;
      backtracks += result.paths.At(w, s) == result.paths.At(w, s - 2);
    }
  }
  // Uniform would backtrack 1/7 (~14%) of the time; p=100 pushes it near zero.
  EXPECT_LT(static_cast<double>(backtracks) / transitions, 0.02);
}

TEST(EngineTest, StopProbabilityKillsWalkers) {
  CsrGraph g = SkewedGraph(1000);
  FlashMobEngine engine(g);
  WalkSpec spec = SmallSpec(20000, 10);
  spec.stop_probability = 0.2;
  WalkResult result = engine.Run(spec);
  EXPECT_TRUE(result.paths.ValidAgainst(g));
  uint64_t alive = 0;
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    alive += result.paths.At(w, 10) != kInvalidVid;
  }
  // Survival through 10 steps ~ 0.8^10 ~ 10.7%.
  EXPECT_NEAR(static_cast<double>(alive) / 20000, std::pow(0.8, 10), 0.02);
  // Dead walkers are excluded from the step count.
  EXPECT_LT(result.stats.total_steps, 20000u * 10);
}

TEST(EngineTest, IdentityFreeModeMatchesVisitDistribution) {
  // The identity-free extension (no reverse shuffle) must leave all aggregate
  // statistics unchanged.
  CsrGraph g = SkewedGraph(3000);
  WalkSpec spec = SmallSpec(60000, 10, 11);
  spec.keep_paths = false;

  FlashMobEngine tracked_engine(g);
  auto tracked = tracked_engine.Run(spec).visit_counts;

  spec.track_identity = false;
  FlashMobEngine free_engine(g);
  auto anonymous = free_engine.Run(spec).visit_counts;

  uint64_t total_a = 0, total_b = 0;
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    total_a += tracked[v];
    total_b += anonymous[v];
  }
  EXPECT_EQ(total_a, total_b);
  for (Vid v = 0; v < 50; ++v) {
    double a = static_cast<double>(tracked[v]) / total_a;
    double b = static_cast<double>(anonymous[v]) / total_b;
    ASSERT_NEAR(a, b, 0.1 * std::max(a, b) + 1e-5) << v;
  }
}

TEST(EngineTest, IdentityFreeNode2VecValidAndBacktrackAverse) {
  CsrGraph g = CompleteGraph(8);
  WalkSpec spec = SmallSpec(50000, 6, 13);
  spec.algorithm = WalkAlgorithm::kNode2Vec;
  spec.node2vec = {100.0, 1.0};
  spec.keep_paths = false;
  spec.track_identity = false;
  FlashMobEngine engine(g);
  WalkResult result = engine.Run(spec);
  // With p=100 the stationary distribution on a complete graph stays uniform; the
  // run must complete and count all steps.
  EXPECT_EQ(result.stats.total_steps, 50000u * 6);
  uint64_t total = 0;
  for (uint64_t c : result.visit_counts) {
    total += c;
  }
  EXPECT_EQ(total, 50000u * 7);
}

TEST(EngineTest, IdentityFreeRejectsKeepPaths) {
  CsrGraph g = SkewedGraph(500);
  FlashMobEngine engine(g);
  WalkSpec spec = SmallSpec(100, 2);
  spec.track_identity = false;
  spec.keep_paths = true;
  EXPECT_DEATH(engine.Run(spec), "track_identity");
}

TEST(EngineTest, Node2VecFirstStepIsUniformNotPrevBiased) {
  // Regression: the first step must be a uniform first-order step (prev ==
  // kInvalidVid), not biased as if every walker's predecessor were vertex 0.
  CsrGraph g = CompleteGraph(5);
  FlashMobEngine engine(g);
  WalkSpec spec = SmallSpec(100000, 1, 17);
  spec.algorithm = WalkAlgorithm::kNode2Vec;
  spec.node2vec = {1000.0, 1.0};  // returning to prev ~forbidden
  WalkResult result = engine.Run(spec);
  // If prev were wrongly 0, walkers at vertices 1..4 would almost never move to 0;
  // under a correct uniform first step, transitions into 0 happen ~1/4 of the time.
  uint64_t into_zero = 0, from_nonzero = 0;
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    if (result.paths.At(w, 0) != 0) {
      ++from_nonzero;
      into_zero += result.paths.At(w, 1) == 0;
    }
  }
  ASSERT_GT(from_nonzero, 1000u);
  EXPECT_NEAR(static_cast<double>(into_zero) / from_nonzero, 0.25, 0.02);
}

TEST(EngineTest, VpWalkerStepsSumToTotal) {
  CsrGraph g = SkewedGraph(5000);
  FlashMobEngine engine(g);
  WalkResult result = engine.Run(SmallSpec(10000, 10));
  uint64_t sum = 0;
  for (uint64_t c : result.stats.vp_walker_steps) {
    sum += c;
  }
  EXPECT_EQ(sum, result.stats.total_steps);
}

TEST(EngineTest, InstrumentedRunCountsAccesses) {
  CsrGraph g = SkewedGraph(2000);
  FlashMobEngine engine(g);
  CacheHierarchy sim;
  WalkSpec spec = SmallSpec(2000, 4);
  WalkResult result = engine.RunInstrumented(spec, &sim);
  EXPECT_TRUE(result.paths.ValidAgainst(g));
  // At least a few accesses per walker-step were simulated.
  EXPECT_GT(sim.counters().accesses, result.stats.total_steps * 2);
}

TEST(EngineTest, DefaultWalkerCountIsNumVertices) {
  CsrGraph g = SkewedGraph(1500);
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.steps = 3;
  WalkResult result = engine.Run(spec);
  EXPECT_EQ(result.paths.num_walkers(), 1500u);
}

TEST(EngineTest, WalksMemoryMappedGraph) {
  // Out-of-core mode: the engine walks a graph whose CSR lives in a file mapping.
  namespace fs = std::filesystem;
  auto path = fs::temp_directory_path() / "fm_engine_mmap.csr";
  CsrGraph in_memory = SkewedGraph(4000);
  SaveCsrBinary(in_memory, path.string());
  CsrGraph mapped = LoadCsrBinaryMapped(path.string());
  ASSERT_TRUE(mapped.memory_mapped());

  FlashMobEngine engine(mapped);
  WalkResult result = engine.Run(SmallSpec(8000, 8, 21));
  EXPECT_TRUE(result.paths.ValidAgainst(in_memory));

  // Identical seeds on the in-memory twin give identical paths.
  FlashMobEngine twin(in_memory);
  WalkResult twin_result = twin.Run(SmallSpec(8000, 8, 21));
  EXPECT_EQ(result.paths.Row(8), twin_result.paths.Row(8));
  fs::remove(path);
}

TEST(EngineTest, WalkerDensityReportsMeanEpisodeSize) {
  // walker_density is the mean episode size in walkers per edge — not the
  // whole-run walker total, which a multi-episode run never holds at once.
  CsrGraph g = SkewedGraph(2000);
  EngineOptions options;
  options.dram_budget_bytes = 1 << 20;
  FlashMobEngine engine(g, options);
  WalkSpec spec = SmallSpec(100000, 5);
  spec.keep_paths = false;
  Wid cap = engine.EpisodeWalkers(spec);
  ASSERT_LT(cap, 100000u);
  WalkResult result = engine.Run(spec);
  uint64_t episodes = (100000 + cap - 1) / cap;
  EXPECT_EQ(result.stats.episodes, episodes);
  double mean_episode = 100000.0 / static_cast<double>(episodes);
  EXPECT_DOUBLE_EQ(result.stats.walker_density,
                   mean_episode / static_cast<double>(g.num_edges()));

  // A single-episode run reports the plain walkers-per-edge ratio.
  FlashMobEngine roomy(g);
  WalkResult single = roomy.Run(spec);
  EXPECT_EQ(single.stats.episodes, 1u);
  EXPECT_DOUBLE_EQ(single.stats.walker_density,
                   100000.0 / static_cast<double>(g.num_edges()));
}

TEST(EngineTest, StepRecordsCoverEveryEpisodeStep) {
  CsrGraph g = SkewedGraph(2000);
  EngineOptions options;
  options.dram_budget_bytes = 1 << 20;  // several episodes
  options.record_step_stats = true;
  FlashMobEngine engine(g, options);
  WalkSpec spec = SmallSpec(50000, 6);
  spec.keep_paths = false;
  WalkResult result = engine.Run(spec);
  ASSERT_GT(result.stats.episodes, 1u);
  ASSERT_EQ(result.stats.step_records.size(), result.stats.episodes * 6);
  uint64_t live_sum = 0;
  uint64_t index = 0;
  for (const StepStageRecord& rec : result.stats.step_records) {
    EXPECT_EQ(rec.episode, index / 6);
    EXPECT_EQ(rec.step, index % 6);
    ++index;
    Wid vp_sum = 0;
    for (Wid c : rec.vp_walkers) {
      vp_sum += c;
    }
    EXPECT_EQ(vp_sum, rec.live_walkers);
    live_sum += rec.live_walkers;
  }
  // stop_probability == 0: every live walker steps every step.
  EXPECT_EQ(live_sum, result.stats.total_steps);
}

TEST(EngineTest, StepRecordsEmptyUnlessRequested) {
  CsrGraph g = SkewedGraph(1000);
  FlashMobEngine engine(g);
  WalkResult result = engine.Run(SmallSpec(2000, 3));
  EXPECT_TRUE(result.stats.step_records.empty());
}

TEST(EngineTest, DeepWalkSpecHelper) {
  WalkSpec spec = DeepWalkSpec(1000);
  EXPECT_EQ(spec.num_walkers, 10000u);
  EXPECT_EQ(spec.steps, 80u);
  WalkSpec n2v = Node2VecSpec(1000, 0.25, 4.0);
  EXPECT_EQ(n2v.steps, 40u);
  EXPECT_DOUBLE_EQ(n2v.node2vec.p, 0.25);
}

}  // namespace
}  // namespace fm
