// Unit tests for the telemetry registry (src/util/telemetry.h): shard-fold
// exactness under concurrency, log2 histogram bucket boundaries and
// percentiles against the exact stats::Percentile, exporter output parsed
// back through the shared JSON parser, the metric-name convention, and the
// background snapshot writer's file contract (>=1 interval line plus a final
// cumulative line).
//
// The registry is process-global, so every test uses names under a
// test-unique module segment and calls ResetForTest() where counts matter;
// instruments themselves are never removed (registry references are valid
// for the process lifetime by design).
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/json.h"
#include "src/util/stats.h"
#include "src/util/telemetry.h"

namespace {

using fm::telemetry::Counter;
using fm::telemetry::Gauge;
using fm::telemetry::Histogram;
using fm::telemetry::HistogramSnapshot;
using fm::telemetry::IsValidMetricName;
using fm::telemetry::kHistogramBuckets;
using fm::telemetry::TelemetryRegistry;
using fm::telemetry::TelemetrySnapshotWriter;

TEST(MetricNameTest, AcceptsConventionAndRejectsEverythingElse) {
  EXPECT_TRUE(IsValidMetricName("fm.engine.walker_steps_total"));
  EXPECT_TRUE(IsValidMetricName("fm.shuffle.pass1_ns_total"));
  EXPECT_TRUE(IsValidMetricName("fm.a.b.c.d"));  // deeper nesting is fine
  EXPECT_TRUE(IsValidMetricName("fm.mod2.metric_9"));

  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("fm"));
  EXPECT_FALSE(IsValidMetricName("fm.engine"));        // only two segments
  EXPECT_FALSE(IsValidMetricName("engine.steps.total"));  // must start fm
  EXPECT_FALSE(IsValidMetricName("fm..steps"));        // empty segment
  EXPECT_FALSE(IsValidMetricName("fm.engine.steps."));  // trailing empty
  EXPECT_FALSE(IsValidMetricName("fm.Engine.steps"));  // no uppercase
  EXPECT_FALSE(IsValidMetricName("fm.engine.steps-total"));  // no dashes
  EXPECT_FALSE(IsValidMetricName("fm.engine.steps total"));  // no spaces
}

TEST(CounterTest, SingleThreadAddFoldsExactly) {
  Counter counter("fm.test.single_total");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add(1);
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsFromManyThreadsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr uint64_t kIters = 50000;
  Counter counter("fm.test.concurrent_total");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kIters; ++i) {
        counter.Add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  // Each thread leases its own shard slot, so the fold is exact: no CAS
  // retries to lose and no torn reads to double-count.
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge("fm.test.level");
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  gauge.Set(-3);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(HistogramTest, BucketBoundariesFollowBitWidth) {
  Histogram hist("fm.test.bucket_ns");
  // bucket b holds values with bit_width(v) == b: 0 -> 0, 1 -> 1,
  // {2,3} -> 2, {4..7} -> 3, and the first value of each power of two
  // starts a new bucket.
  hist.Observe(0);
  hist.Observe(1);
  hist.Observe(2);
  hist.Observe(3);
  hist.Observe(4);
  hist.Observe(7);
  hist.Observe(8);
  hist.Observe(1023);
  hist.Observe(1024);
  hist.Observe(~uint64_t{0});

  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.buckets[0], 1u);   // {0}
  EXPECT_EQ(snap.buckets[1], 1u);   // {1}
  EXPECT_EQ(snap.buckets[2], 2u);   // {2,3}
  EXPECT_EQ(snap.buckets[3], 2u);   // {4..7}
  EXPECT_EQ(snap.buckets[4], 1u);   // {8..15}
  EXPECT_EQ(snap.buckets[10], 1u);  // {512..1023}
  EXPECT_EQ(snap.buckets[11], 1u);  // {1024..2047}
  EXPECT_EQ(snap.buckets[64], 1u);  // >= 2^63
  uint64_t expected_sum = 0 + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024;
  expected_sum += ~uint64_t{0};  // wraps; Snapshot sums with the same wrap
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(HistogramTest, EmptyHistogramPercentileIsZero) {
  Histogram hist("fm.test.empty_ns");
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(50), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, PercentileWithinOnePowerOfTwoOfExact) {
  Histogram hist("fm.test.pct_ns");
  std::vector<double> exact;
  // A spread that crosses several buckets, with repeats.
  for (uint64_t v : {3u, 5u, 9u, 17u, 17u, 100u, 1000u, 5000u, 70000u,
                     70000u, 70000u, 1000000u}) {
    hist.Observe(v);
    exact.push_back(static_cast<double>(v));
  }
  std::vector<double> sorted = exact;
  std::sort(sorted.begin(), sorted.end());
  HistogramSnapshot snap = hist.Snapshot();
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double approx = snap.Percentile(p);
    // stats::Percentile interpolates between order statistics, which can
    // land far from any sample when ranks straddle a gap; the log2 buckets
    // only promise one power-of-two of error against the *samples*. So
    // bound against the order statistics that bracket the rank.
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const double lo = sorted[static_cast<size_t>(rank)];
    const double hi = sorted[static_cast<size_t>(std::ceil(rank))];
    EXPECT_GE(approx, lo / 2) << "p" << p;
    EXPECT_LE(approx, hi * 2) << "p" << p;
    // And the exact interpolated answer stays inside the same bracket, so
    // the two implementations agree up to bucket quantization.
    const double truth = fm::Percentile(exact, p);
    EXPECT_GE(truth, lo);
    EXPECT_LE(truth, hi);
  }
  // Extremes pin to the occupied bucket range.
  EXPECT_GE(snap.Percentile(0), 2.0);         // smallest value 3 is in [2,3]
  EXPECT_LE(snap.Percentile(100), 1 << 20);   // largest is in [2^19, 2^20)
}

TEST(HistogramTest, ConcurrentObservesLoseNoSamples) {
  constexpr int kThreads = 8;
  constexpr uint64_t kIters = 20000;
  Histogram hist("fm.test.hammer_ns");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kIters; ++i) {
        hist.Observe(static_cast<uint64_t>(t) * 1000 + (i & 255));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(hist.Snapshot().count, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(RegistryTest, LookupIsIdempotentAndReturnsStableReferences) {
  TelemetryRegistry& registry = TelemetryRegistry::Get();
  Counter& a = registry.CounterRef("fm.test.idem_total");
  Counter& b = registry.CounterRef("fm.test.idem_total");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.GaugeRef("fm.test.idem_level");
  Gauge& g2 = registry.GaugeRef("fm.test.idem_level");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.HistogramRef("fm.test.idem_ns");
  Histogram& h2 = registry.HistogramRef("fm.test.idem_ns");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  TelemetryRegistry& registry = TelemetryRegistry::Get();
  registry.ResetForTest();
  registry.CounterRef("fm.test.snap_b_total").Add(2);
  registry.CounterRef("fm.test.snap_a_total").Add(1);
  registry.GaugeRef("fm.test.snap_level").Set(5);
  registry.HistogramRef("fm.test.snap_ns").Observe(100);

  fm::telemetry::RegistrySnapshot snap = registry.Snapshot();
  // Other tests may have registered more instruments; check ordering
  // globally and our values by name.
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  uint64_t a = 0, b = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "fm.test.snap_a_total") a = c.value;
    if (c.name == "fm.test.snap_b_total") b = c.value;
  }
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  bool saw_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "fm.test.snap_ns") {
      saw_hist = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.sum, 100u);
    }
  }
  EXPECT_TRUE(saw_hist);
}

TEST(RegistryTest, JsonLineParsesAndCarriesCumulativeValues) {
  TelemetryRegistry& registry = TelemetryRegistry::Get();
  registry.ResetForTest();
  registry.CounterRef("fm.test.json_total").Add(123);
  registry.GaugeRef("fm.test.json_level").Set(-7);
  Histogram& hist = registry.HistogramRef("fm.test.json_ns");
  hist.Observe(5);
  hist.Observe(1000);

  const std::string line = registry.RenderJsonLine(987654321);
  fm::json::Value doc = fm::json::ParseJson(line);
  EXPECT_EQ(doc.Str("schema"), "fm-telemetry-v1");
  EXPECT_EQ(doc.Num("t_ns"), 987654321.0);
  EXPECT_EQ(doc.At("counters").Num("fm.test.json_total"), 123.0);
  EXPECT_EQ(doc.At("gauges").Num("fm.test.json_level"), -7.0);

  const fm::json::Value& h = doc.At("histograms").At("fm.test.json_ns");
  EXPECT_EQ(h.Num("count"), 2.0);
  EXPECT_EQ(h.Num("sum"), 1005.0);
  EXPECT_TRUE(h.Has("p50"));
  EXPECT_TRUE(h.Has("p90"));
  EXPECT_TRUE(h.Has("p99"));
  EXPECT_TRUE(h.Has("p999"));
  // Non-empty buckets only: 5 -> bucket 3, 1000 -> bucket 10.
  EXPECT_EQ(h.At("buckets").Num("3"), 1.0);
  EXPECT_EQ(h.At("buckets").Num("10"), 1.0);
}

TEST(RegistryTest, PrometheusRenderHasTypesBucketsAndTotals) {
  TelemetryRegistry& registry = TelemetryRegistry::Get();
  registry.ResetForTest();
  registry.CounterRef("fm.test.prom_total").Add(9);
  registry.GaugeRef("fm.test.prom_level").Set(4);
  Histogram& hist = registry.HistogramRef("fm.test.prom_ns");
  hist.Observe(3);   // bucket 2, le="3"
  hist.Observe(300);  // bucket 9, le="511"

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE fm_test_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fm_test_prom_total 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fm_test_prom_level gauge"), std::string::npos);
  EXPECT_NE(text.find("fm_test_prom_level 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fm_test_prom_ns histogram"), std::string::npos);
  // Cumulative le-buckets: the le="3" bucket holds 1, le="511" holds 2, and
  // +Inf always equals the count.
  EXPECT_NE(text.find("fm_test_prom_ns_bucket{le=\"3\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fm_test_prom_ns_bucket{le=\"511\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fm_test_prom_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("fm_test_prom_ns_sum 303"), std::string::npos);
  EXPECT_NE(text.find("fm_test_prom_ns_count 2"), std::string::npos);
}

TEST(RegistryTest, ResetZeroesCountersAndHistogramsButKeepsGaugeLevels) {
  TelemetryRegistry& registry = TelemetryRegistry::Get();
  Counter& counter = registry.CounterRef("fm.test.reset_total");
  Gauge& gauge = registry.GaugeRef("fm.test.reset_level");
  Histogram& hist = registry.HistogramRef("fm.test.reset_ns");
  counter.Add(10);
  gauge.Set(11);
  hist.Observe(12);

  registry.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(hist.Snapshot().count, 0u);
  // A gauge is a level, not an accumulation — reset does not rewrite history.
  EXPECT_EQ(gauge.Value(), 11);
}

TEST(SnapshotWriterTest, WritesIntervalLinesAndFinalCumulativeLine) {
  TelemetryRegistry& registry = TelemetryRegistry::Get();
  registry.ResetForTest();
  Counter& counter = registry.CounterRef("fm.test.writer_total");

  const std::string path = testing::TempDir() + "/telemetry_writer_test.jsonl";
  {
    TelemetrySnapshotWriter writer(path, 5);
    EXPECT_FALSE(writer.started());
    ASSERT_TRUE(writer.Start());
    EXPECT_TRUE(writer.started());
    counter.Add(17);
    // Let the 5ms interval tick a few times so the file gets mid-run lines.
    while (writer.lines_written() < 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    counter.Add(25);
    writer.Stop();
    EXPECT_GE(writer.lines_written(), 3u);
    writer.Stop();  // idempotent
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 3u);
  for (const std::string& line : lines) {
    fm::json::Value doc = fm::json::ParseJson(line);
    EXPECT_EQ(doc.Str("schema"), "fm-telemetry-v1");
  }
  // The final line is written after the loop thread joins, so it must hold
  // the end-of-run cumulative value.
  fm::json::Value last = fm::json::ParseJson(lines.back());
  EXPECT_EQ(last.At("counters").Num("fm.test.writer_total"), 42.0);
  std::remove(path.c_str());
}

TEST(SnapshotWriterTest, StartFailsOnUnopenablePath) {
  TelemetrySnapshotWriter writer(
      testing::TempDir() + "/no_such_dir_for_telemetry/out.jsonl", 50);
  EXPECT_FALSE(writer.Start());
  writer.Stop();  // must be safe without a successful Start
}

}  // namespace
