// Shared JSON layer (src/util/json.h): RFC 8259 escaping cases, parser error
// behavior, and the regression that motivated factoring one escaper: a metrics
// document whose graph path carries quotes/backslashes/control characters must
// parse and round-trip through every emitter that uses the shared code.
#include "src/util/json.h"

#include <gtest/gtest.h>

#include <string>

#include "src/core/engine.h"
#include "src/core/metrics.h"

namespace fm {
namespace {

TEST(JsonEscapeTest, PlainStringsPassThrough) {
  EXPECT_EQ(json::JsonEscape("hello world_123"), "hello world_123");
  EXPECT_EQ(json::JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  // Other control characters become \u00XX.
  EXPECT_EQ(json::JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json::JsonEscape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscapeTest, AppendQuotedWrapsInQuotes) {
  std::string out = "x:";
  json::AppendQuoted(&out, "p\"q");
  EXPECT_EQ(out, "x:\"p\\\"q\"");
}

TEST(JsonEscapeTest, EscapedStringsRoundTripThroughTheParser) {
  const std::string nasty = "C:\\graphs\\\"my graph\"\nfinal\x02.bin";
  std::string doc = "{\"path\":";
  json::AppendQuoted(&doc, nasty);
  doc += '}';
  json::Value v = json::ParseJson(doc);
  EXPECT_EQ(v.Str("path"), nasty);
}

TEST(JsonParseTest, ParsesTheBasicGrammar) {
  json::Value v = json::ParseJson(
      R"({"a":1.5,"b":[1,2,3],"c":{"d":"s"},"t":true,"n":null})");
  EXPECT_EQ(v.Num("a"), 1.5);
  EXPECT_EQ(v.At("b").array.size(), 3u);
  EXPECT_EQ(v.At("c").Str("d"), "s");
  EXPECT_TRUE(v.At("t").boolean);
  EXPECT_EQ(v.At("n").type, json::Value::Type::kNull);
}

TEST(JsonParseTest, ThrowsOnMalformedInput) {
  EXPECT_THROW(json::ParseJson("{"), std::runtime_error);
  EXPECT_THROW(json::ParseJson("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(json::ParseJson("[1,2,"), std::runtime_error);
  EXPECT_THROW(json::ParseJson("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::ParseJson("{} trailing"), std::runtime_error);
  EXPECT_THROW(json::ParseJson(""), std::runtime_error);
}

// Regression: metrics metadata carries arbitrary file paths. Before the shared
// escaper, a path with a quote produced an unparseable document.
TEST(JsonMetricsTest, MetricsJsonSurvivesHostilePaths) {
  MetricsMeta meta;
  meta.tool = "fmwalk";
  meta.graph = "/data/\"quoted\"\\backslash\ngraph.el";
  meta.algorithm = "deepwalk";
  meta.seed = 42;
  meta.threads = 8;
  WalkStats stats;
  stats.total_steps = 10;

  std::string doc = WalkMetricsJson(meta, stats, nullptr);
  json::Value v = json::ParseJson(doc);
  EXPECT_EQ(v.Str("schema"), "fm-metrics-v1");
  EXPECT_EQ(v.Str("graph"), meta.graph);
  EXPECT_EQ(v.Str("tool"), "fmwalk");
}

TEST(JsonMetricsTest, BenchTrajectorySurvivesHostileSeriesNames) {
  BenchTrajectory traj("fig\"1\"");
  traj.Add("series\\one", "p\nq", 1.25, "s");
  json::Value v = json::ParseJson(traj.ToJson());
  EXPECT_EQ(v.Str("bench"), "fig\"1\"");
  EXPECT_EQ(v.At("points").array.at(0).Str("series"), "series\\one");
  EXPECT_EQ(v.At("points").array.at(0).Str("point"), "p\nq");
}

}  // namespace
}  // namespace fm
