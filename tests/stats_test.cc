#include "src/util/stats.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace fm {
namespace {

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 0.001);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 99), 7.0);
}

TEST(ChiSquareTest, ExactStatistic) {
  // Observed 60/40 vs expected 50/50: chi2 = 100/50 + 100/50 = 4.
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({60, 40}, {50.0, 50.0}), 4.0);
}

TEST(ChiSquareTest, ZeroExpectationHandling) {
  EXPECT_TRUE(std::isinf(ChiSquareStatistic({1, 99}, {0.0, 100.0})));
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({0, 100}, {0.0, 100.0}), 0.0);
}

TEST(ChiSquareTest, CriticalValuesMatchTables) {
  // Reference values from standard chi-square tables.
  // Wilson-Hilferty is weakest at dof=1 (~2.5% error); tolerate it.
  EXPECT_NEAR(ChiSquareCriticalValue(1, 0.05), 3.841, 0.15);
  EXPECT_NEAR(ChiSquareCriticalValue(10, 0.05), 18.307, 0.2);
  EXPECT_NEAR(ChiSquareCriticalValue(100, 0.05), 124.34, 1.0);
  EXPECT_NEAR(ChiSquareCriticalValue(5, 0.001), 20.52, 0.3);
}

TEST(ChiSquareTest, AcceptsTrueDistribution) {
  XorShiftRng rng(3);
  std::vector<uint64_t> observed(10, 0);
  const uint64_t draws = 1 << 18;
  for (uint64_t i = 0; i < draws; ++i) {
    ++observed[rng.NextBounded(10)];
  }
  std::vector<double> expected(10, draws / 10.0);
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

TEST(ChiSquareTest, RejectsWrongDistribution) {
  // Heavily skewed observations against a uniform expectation.
  std::vector<uint64_t> observed{5000, 1000, 1000, 1000};
  std::vector<double> expected(4, 2000.0);
  EXPECT_FALSE(ChiSquareTestPasses(observed, expected));
}

}  // namespace
}  // namespace fm
