#include "src/core/partition_plan.h"

#include <gtest/gtest.h>

#include "src/core/cost_model.h"
#include "src/gen/powerlaw_graph.h"
#include "src/gen/uniform_degree.h"
#include "tests/test_util.h"

namespace fm {
namespace {

CsrGraph SkewedGraph(Vid n = 50000, double avg = 16, double alpha = 0.85) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = avg;
  config.degrees.alpha = alpha;
  config.degrees.max_degree = n / 16;
  return GeneratePowerLawGraph(config);
}

TEST(PartitionPlanTest, UniformPlanTilesGraph) {
  CsrGraph g = SkewedGraph(10000);
  for (uint32_t parts : {1u, 7u, 64u, 2048u}) {
    PartitionPlan plan = PartitionPlan::BuildUniform(g, parts, SamplePolicy::kDS);
    plan.CheckValid();
    EXPECT_LE(plan.num_vps(), parts == 1 ? 1u : 2 * parts);
    EXPECT_EQ(plan.vps().front().begin, 0u);
    EXPECT_EQ(plan.vps().back().end, g.num_vertices());
  }
}

TEST(PartitionPlanTest, VpOfMatchesLinearSearch) {
  CsrGraph g = SkewedGraph(30000);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 32;
  config.max_partitions = 256;
  PartitionPlan plan = PartitionPlan::BuildOptimized(g, g.num_vertices(), model,
                                                     config);
  plan.CheckValid();
  for (Vid v = 0; v < g.num_vertices(); v += 97) {
    uint32_t arithmetic = plan.VpOf(v);
    const VertexPartition& vp = plan.vp(arithmetic);
    EXPECT_LE(vp.begin, v);
    EXPECT_LT(v, vp.end);
  }
}

TEST(PartitionPlanTest, OptimizedRespectsFanoutLimit) {
  CsrGraph g = SkewedGraph(100000, 12, 0.8);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 64;
  config.max_partitions = 128;
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 2, model, config);
  plan.CheckValid();
  EXPECT_LE(plan.num_outer_bins(), 128u);
}

TEST(PartitionPlanTest, OptimizedAssignsPsToHubsAndDsToTail) {
  CsrGraph g = SkewedGraph(200000, 16, 0.9);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 64;
  config.max_partitions = 2048;
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 4, model, config);
  // The last partitions hold degree-1/2 vertices: DS must win there (Fig 10's
  // "lowest degree vertices are usually using D[S]").
  EXPECT_EQ(plan.vps().back().policy, SamplePolicy::kDS);
  // Some partition with hub-grade average degree should use PS.
  bool any_ps = false;
  for (const auto& vp : plan.vps()) {
    any_ps |= vp.policy == SamplePolicy::kPS;
  }
  EXPECT_TRUE(any_ps);
}

TEST(PartitionPlanTest, UniformDegreeDetection) {
  CsrGraph g = GenerateUniformDegreeGraph(4096, 3, 5);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 16, SamplePolicy::kDS);
  for (const auto& vp : plan.vps()) {
    EXPECT_TRUE(vp.uniform_degree);
    EXPECT_EQ(vp.degree, 3u);
  }
}

TEST(PartitionPlanTest, ManualHeuristicValidAndBounded) {
  CsrGraph g = SkewedGraph(80000);
  PartitionPlan::Config config;
  config.num_groups = 64;
  config.max_partitions = 512;
  PartitionPlan plan =
      PartitionPlan::BuildManualHeuristic(g, g.num_vertices(), config);
  plan.CheckValid();
  EXPECT_LE(plan.num_vps(), 512u);
}

TEST(PartitionPlanTest, InternalShuffleChosenUnderTightFanout) {
  // With a tiny fan-out budget and a large graph, the DP must put at least one
  // group behind an internal shuffle rather than give up on small VPs entirely.
  CsrGraph g = SkewedGraph(100000, 16, 0.9);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 32;
  config.max_partitions = 40;  // fewer bins than groups want
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 8, model, config);
  plan.CheckValid();
  EXPECT_LE(plan.num_outer_bins(), 40u);
  // Either every group coarsened to 1 VP, or internal shuffles appeared; with high
  // density the cost model should prefer some internal shuffles. Accept both but
  // verify the plan machinery handles the flag when present.
  if (plan.has_internal_shuffle()) {
    bool found = false;
    for (const auto& grp : plan.groups()) {
      if (grp.internal_shuffle) {
        EXPECT_GT(grp.vp_count, 1u);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(PartitionPlanTest, SmallGraphSingleVp) {
  CsrGraph g = SmallSortedGraph();
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 64;
  PartitionPlan plan = PartitionPlan::BuildOptimized(g, 4, model, config);
  plan.CheckValid();
  EXPECT_GE(plan.num_vps(), 1u);
  EXPECT_EQ(plan.vps().back().end, 4u);
}

TEST(PartitionPlanTest, DescribeMentionsEveryGroup) {
  CsrGraph g = SkewedGraph(10000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 8, SamplePolicy::kPS);
  std::string desc = plan.Describe();
  EXPECT_NE(desc.find("group 0"), std::string::npos);
  EXPECT_NE(desc.find("vps="), std::string::npos);
}

TEST(ShufflePlanTest, BinsTileVpsExactly) {
  CsrGraph g = SkewedGraph(50000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 64, SamplePolicy::kDS);
  ShufflePlan sp = BuildShufflePlan(plan, g, 1 << 20, CacheInfo{}, 4);
  ASSERT_GE(sp.bin_first_vp.size(), 2u);
  EXPECT_EQ(sp.bin_first_vp.front(), 0u);
  EXPECT_EQ(sp.bin_first_vp.back(), plan.num_vps());
  for (size_t i = 1; i < sp.bin_first_vp.size(); ++i) {
    EXPECT_LT(sp.bin_first_vp[i - 1], sp.bin_first_vp[i]) << i;
  }
  // Buffers hold whole cache lines (the full-line flush protocol needs it).
  const uint32_t vids_per_line = kCacheLineBytes / sizeof(Vid);
  EXPECT_GE(sp.buffer_records, vids_per_line);
  EXPECT_EQ(sp.buffer_records % vids_per_line, 0u);
  std::string desc = sp.Describe();
  EXPECT_NE(desc.find("bins="), std::string::npos);
  EXPECT_NE(desc.find("recommended="), std::string::npos);
}

TEST(ShufflePlanTest, MoreWalkersMeanMoreBins) {
  // Bin working sets target half of L2, so geometry must refine as density
  // grows — a constant bin count would let segments outgrow the cache.
  CsrGraph g = SkewedGraph(50000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 256, SamplePolicy::kDS);
  ShufflePlan sparse = BuildShufflePlan(plan, g, 1 << 12, CacheInfo{}, 4);
  ShufflePlan dense = BuildShufflePlan(plan, g, 1 << 24, CacheInfo{}, 4);
  EXPECT_GE(dense.num_bins(), sparse.num_bins());
  EXPECT_GT(dense.num_bins(), 1u);
}

TEST(ShufflePlanTest, RecommendationCrossover) {
  CsrGraph g = SkewedGraph(50000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 64, SamplePolicy::kDS);
  // Paper cache, few walkers: the whole walker array is LLC-resident, the
  // direct path cannot thrash, binned's extra arena pass would only add work.
  EXPECT_EQ(BuildShufflePlan(plan, g, 1000, CacheInfo{}, 4).recommended,
            ShuffleBackendKind::kDirect);
  // Shrunken cache, many walkers: the array spills the LLC and the per-VP
  // cursors + open destination lines spill L2 — the propagation-blocking
  // regime.
  CacheInfo tiny;
  tiny.l2_bytes = 4096;
  tiny.l3_bytes = 16384;
  ShufflePlan sp = BuildShufflePlan(plan, g, 100000, tiny, 4);
  EXPECT_GT(sp.num_bins(), 1u);
  EXPECT_EQ(sp.recommended, ShuffleBackendKind::kBinned);
}

TEST(ShufflePlanTest, BackendNamesParseAndPrint) {
  ShuffleBackendKind kind = ShuffleBackendKind::kAuto;
  EXPECT_TRUE(ParseShuffleBackendName("direct", &kind));
  EXPECT_EQ(kind, ShuffleBackendKind::kDirect);
  EXPECT_TRUE(ParseShuffleBackendName("binned", &kind));
  EXPECT_EQ(kind, ShuffleBackendKind::kBinned);
  EXPECT_TRUE(ParseShuffleBackendName("auto", &kind));
  EXPECT_EQ(kind, ShuffleBackendKind::kAuto);
  EXPECT_FALSE(ParseShuffleBackendName("bogus", &kind));
  EXPECT_STREQ(ShuffleBackendName(ShuffleBackendKind::kDirect), "direct");
  EXPECT_STREQ(ShuffleBackendName(ShuffleBackendKind::kBinned), "binned");
  EXPECT_STREQ(ShuffleBackendName(ShuffleBackendKind::kAuto), "auto");
}

TEST(PartitionPlanTest, GroupSizesArePowerOfTwoExceptLast) {
  CsrGraph g = SkewedGraph(33000);  // not a power of two
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 16;
  PartitionPlan plan = PartitionPlan::BuildOptimized(g, 33000, model, config);
  const auto& groups = plan.groups();
  for (size_t i = 0; i + 1 < groups.size(); ++i) {
    Vid size = groups[i].end - groups[i].begin;
    EXPECT_EQ(size & (size - 1), 0u) << "group " << i;
    EXPECT_EQ(size, groups[0].end - groups[0].begin);
  }
}

}  // namespace
}  // namespace fm
