#include "src/core/partition_plan.h"

#include <gtest/gtest.h>

#include "src/core/cost_model.h"
#include "src/gen/powerlaw_graph.h"
#include "src/gen/uniform_degree.h"
#include "tests/test_util.h"

namespace fm {
namespace {

CsrGraph SkewedGraph(Vid n = 50000, double avg = 16, double alpha = 0.85) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = avg;
  config.degrees.alpha = alpha;
  config.degrees.max_degree = n / 16;
  return GeneratePowerLawGraph(config);
}

TEST(PartitionPlanTest, UniformPlanTilesGraph) {
  CsrGraph g = SkewedGraph(10000);
  for (uint32_t parts : {1u, 7u, 64u, 2048u}) {
    PartitionPlan plan = PartitionPlan::BuildUniform(g, parts, SamplePolicy::kDS);
    plan.CheckValid();
    EXPECT_LE(plan.num_vps(), parts == 1 ? 1u : 2 * parts);
    EXPECT_EQ(plan.vps().front().begin, 0u);
    EXPECT_EQ(plan.vps().back().end, g.num_vertices());
  }
}

TEST(PartitionPlanTest, VpOfMatchesLinearSearch) {
  CsrGraph g = SkewedGraph(30000);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 32;
  config.max_partitions = 256;
  PartitionPlan plan = PartitionPlan::BuildOptimized(g, g.num_vertices(), model,
                                                     config);
  plan.CheckValid();
  for (Vid v = 0; v < g.num_vertices(); v += 97) {
    uint32_t arithmetic = plan.VpOf(v);
    const VertexPartition& vp = plan.vp(arithmetic);
    EXPECT_LE(vp.begin, v);
    EXPECT_LT(v, vp.end);
  }
}

TEST(PartitionPlanTest, OptimizedRespectsFanoutLimit) {
  CsrGraph g = SkewedGraph(100000, 12, 0.8);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 64;
  config.max_partitions = 128;
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 2, model, config);
  plan.CheckValid();
  EXPECT_LE(plan.num_outer_bins(), 128u);
}

TEST(PartitionPlanTest, OptimizedAssignsPsToHubsAndDsToTail) {
  CsrGraph g = SkewedGraph(200000, 16, 0.9);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 64;
  config.max_partitions = 2048;
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 4, model, config);
  // The last partitions hold degree-1/2 vertices: DS must win there (Fig 10's
  // "lowest degree vertices are usually using D[S]").
  EXPECT_EQ(plan.vps().back().policy, SamplePolicy::kDS);
  // Some partition with hub-grade average degree should use PS.
  bool any_ps = false;
  for (const auto& vp : plan.vps()) {
    any_ps |= vp.policy == SamplePolicy::kPS;
  }
  EXPECT_TRUE(any_ps);
}

TEST(PartitionPlanTest, UniformDegreeDetection) {
  CsrGraph g = GenerateUniformDegreeGraph(4096, 3, 5);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 16, SamplePolicy::kDS);
  for (const auto& vp : plan.vps()) {
    EXPECT_TRUE(vp.uniform_degree);
    EXPECT_EQ(vp.degree, 3u);
  }
}

TEST(PartitionPlanTest, ManualHeuristicValidAndBounded) {
  CsrGraph g = SkewedGraph(80000);
  PartitionPlan::Config config;
  config.num_groups = 64;
  config.max_partitions = 512;
  PartitionPlan plan =
      PartitionPlan::BuildManualHeuristic(g, g.num_vertices(), config);
  plan.CheckValid();
  EXPECT_LE(plan.num_vps(), 512u);
}

TEST(PartitionPlanTest, InternalShuffleChosenUnderTightFanout) {
  // With a tiny fan-out budget and a large graph, the DP must put at least one
  // group behind an internal shuffle rather than give up on small VPs entirely.
  CsrGraph g = SkewedGraph(100000, 16, 0.9);
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 32;
  config.max_partitions = 40;  // fewer bins than groups want
  PartitionPlan plan =
      PartitionPlan::BuildOptimized(g, g.num_vertices() * 8, model, config);
  plan.CheckValid();
  EXPECT_LE(plan.num_outer_bins(), 40u);
  // Either every group coarsened to 1 VP, or internal shuffles appeared; with high
  // density the cost model should prefer some internal shuffles. Accept both but
  // verify the plan machinery handles the flag when present.
  if (plan.has_internal_shuffle()) {
    bool found = false;
    for (const auto& grp : plan.groups()) {
      if (grp.internal_shuffle) {
        EXPECT_GT(grp.vp_count, 1u);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(PartitionPlanTest, SmallGraphSingleVp) {
  CsrGraph g = SmallSortedGraph();
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 64;
  PartitionPlan plan = PartitionPlan::BuildOptimized(g, 4, model, config);
  plan.CheckValid();
  EXPECT_GE(plan.num_vps(), 1u);
  EXPECT_EQ(plan.vps().back().end, 4u);
}

TEST(PartitionPlanTest, DescribeMentionsEveryGroup) {
  CsrGraph g = SkewedGraph(10000);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 8, SamplePolicy::kPS);
  std::string desc = plan.Describe();
  EXPECT_NE(desc.find("group 0"), std::string::npos);
  EXPECT_NE(desc.find("vps="), std::string::npos);
}

TEST(PartitionPlanTest, GroupSizesArePowerOfTwoExceptLast) {
  CsrGraph g = SkewedGraph(33000);  // not a power of two
  AnalyticCostModel model;
  PartitionPlan::Config config;
  config.num_groups = 16;
  PartitionPlan plan = PartitionPlan::BuildOptimized(g, 33000, model, config);
  const auto& groups = plan.groups();
  for (size_t i = 0; i + 1 < groups.size(); ++i) {
    Vid size = groups[i].end - groups[i].begin;
    EXPECT_EQ(size & (size - 1), 0u) << "group " << i;
    EXPECT_EQ(size, groups[0].end - groups[0].begin);
  }
}

}  // namespace
}  // namespace fm
