// End-to-end smoke tests of the fmwalk and fmmon CLI binaries (paths injected
// by CMake).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/util/json.h"

#ifndef FMWALK_PATH
#error "FMWALK_PATH must be defined by the build"
#endif
#ifndef FMMON_PATH
#error "FMMON_PATH must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "fm_cli_test";
    fs::create_directories(dir_);
    // A small ring + chords graph with weights.
    std::ofstream out(dir_ / "edges.txt");
    out << "# demo graph\n";
    for (int v = 0; v < 100; ++v) {
      out << v << ' ' << (v + 1) % 100 << " 1.0\n";
      out << v << ' ' << (v + 7) % 100 << " 2.5\n";
    }
  }
  void TearDown() override { fs::remove_all(dir_); }

  int Run(const std::string& args) {
    std::string cmd = std::string(FMWALK_PATH) + " " + args + " 2>/dev/null";
    return std::system(cmd.c_str());
  }

  size_t LineCount(const fs::path& p) {
    std::ifstream in(p);
    size_t lines = 0;
    std::string line;
    while (std::getline(in, line)) {
      ++lines;
    }
    return lines;
  }

  fs::path dir_;
};

TEST_F(CliTest, DeepWalkWritesPaths) {
  auto out = dir_ / "walks.txt";
  int rc = Run("--graph=" + (dir_ / "edges.txt").string() +
               " --steps=5 --rounds=2 --out=" + out.string());
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(LineCount(out), 200u);  // rounds * |V| walks, one per line
}

TEST_F(CliTest, Node2VecPairsAndStats) {
  auto pairs = dir_ / "pairs.txt";
  int rc = Run("--graph=" + (dir_ / "edges.txt").string() +
               " --algo=node2vec --p=0.5 --q=2 --steps=4 --rounds=1 --stats "
               "--pairs=" + pairs.string());
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(LineCount(pairs), 400u);  // |V| walkers * 4 sampled edges
}

TEST_F(CliTest, WeightedWalkRuns) {
  int rc = Run("--graph=" + (dir_ / "edges.txt").string() +
               " --weighted --steps=3 --rounds=1");
  EXPECT_EQ(rc, 0);
}

TEST_F(CliTest, MetricsJsonSmoke) {
  // --metrics-json must exit 0 and emit a parseable fm-metrics-v1 document
  // even where perf_event_open is unavailable (the backend then reads "noop").
  auto metrics = dir_ / "metrics.json";
  int rc = Run("--graph=" + (dir_ / "edges.txt").string() +
               " --steps=4 --rounds=2 --metrics-json=" + metrics.string());
  ASSERT_EQ(rc, 0);
  ASSERT_TRUE(fs::exists(metrics));
  std::ifstream in(metrics);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  fm::json::Value doc = fm::json::ParseJson(
      text.substr(0, text.find_last_not_of('\n') + 1));
  EXPECT_EQ(doc.Str("schema"), "fm-metrics-v1");
  // Walk ran locally: backend is whatever the host supports, never "off".
  EXPECT_TRUE(doc.Str("backend") == "perf" || doc.Str("backend") == "noop");
  EXPECT_EQ(doc.Num("seed"), 1.0);
  EXPECT_EQ(doc.At("run").Num("total_steps"), 800.0);  // 2*|V| walkers * 4 steps
  // One step entry per (episode, step), each with per-stage counters.
  ASSERT_EQ(doc.At("steps").array.size(), 4u);
  for (const auto& step : doc.At("steps").array) {
    EXPECT_TRUE(step.Has("scatter_s"));
    EXPECT_TRUE(step.Has("sample_s"));
    EXPECT_TRUE(step.Has("gather_s"));
    EXPECT_TRUE(step.At("counters").Has("scatter"));
    EXPECT_TRUE(step.At("counters").At("sample").Has("llc_misses"));
  }
  // VP attribution covers all walker-steps.
  double share = 0;
  for (const auto& cls : doc.At("vp_classes").array) {
    share += cls.Num("walker_step_share");
  }
  EXPECT_NEAR(share, 1.0, 1e-4);  // %.6g rounding per class
}

TEST_F(CliTest, ShuffleBackendSelection) {
  // Every --shuffle value runs, the pinned backend lands in the metrics, and
  // paths are identical across backends (the bit-identical layout guarantee,
  // observed end to end).
  auto out_direct = dir_ / "direct.txt";
  auto out_binned = dir_ / "binned.txt";
  for (const char* backend : {"direct", "binned", "auto"}) {
    auto metrics = dir_ / (std::string(backend) + ".json");
    auto walks = std::string(backend) == "direct" ? out_direct : out_binned;
    int rc = Run("--graph=" + (dir_ / "edges.txt").string() +
                 " --steps=4 --rounds=2 --shuffle=" + backend +
                 " --out=" + walks.string() +
                 " --metrics-json=" + metrics.string());
    ASSERT_EQ(rc, 0) << backend;
    std::ifstream in(metrics);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    fm::json::Value doc = fm::json::ParseJson(
        text.substr(0, text.find_last_not_of('\n') + 1));
    std::string ran = doc.At("run").Str("shuffle_backend");
    if (std::string(backend) == "auto") {
      EXPECT_TRUE(ran == "direct" || ran == "binned") << ran;
    } else {
      EXPECT_EQ(ran, backend);
    }
    for (const auto& step : doc.At("steps").array) {
      EXPECT_TRUE(step.Has("scatter_pass1_s"));
      EXPECT_TRUE(step.Has("flushed_lines"));
    }
  }
  // Same seed, different backend: identical walks.
  std::ifstream a(out_direct), b(out_binned);
  std::string direct_paths((std::istreambuf_iterator<char>(a)),
                           std::istreambuf_iterator<char>());
  std::string binned_paths((std::istreambuf_iterator<char>(b)),
                           std::istreambuf_iterator<char>());
  ASSERT_FALSE(direct_paths.empty());
  EXPECT_EQ(direct_paths, binned_paths);
}

TEST_F(CliTest, TelemetryJsonlAgreesWithMetricsAndFmmonSummarizes) {
  // A graph big enough that the run spans several 10ms snapshot intervals:
  // the file must hold >= 2 mid-run lines plus the final cumulative line,
  // and the final line's counters must equal fm-metrics-v1 exactly (the
  // single-source-of-truth contract).
  std::ofstream big(dir_ / "big.txt");
  for (int v = 0; v < 5000; ++v) {
    big << v << ' ' << (v + 1) % 5000 << '\n';
    big << v << ' ' << (v + 13) % 5000 << '\n';
  }
  big.close();
  auto jsonl = dir_ / "telemetry.jsonl";
  auto metrics = dir_ / "telemetry_metrics.json";
  int rc = Run("--graph=" + (dir_ / "big.txt").string() +
               " --steps=40 --rounds=20 --telemetry-jsonl=" + jsonl.string() +
               " --telemetry-interval-ms=10 --metrics-json=" +
               metrics.string());
  ASSERT_EQ(rc, 0);

  std::ifstream in(jsonl);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  ASSERT_GE(lines.size(), 3u) << "expected >= 2 mid-run snapshots + final";
  for (const std::string& line : lines) {
    EXPECT_EQ(fm::json::ParseJson(line).Str("schema"), "fm-telemetry-v1");
  }

  std::ifstream min(metrics);
  std::string mtext((std::istreambuf_iterator<char>(min)),
                    std::istreambuf_iterator<char>());
  fm::json::Value mdoc = fm::json::ParseJson(
      mtext.substr(0, mtext.find_last_not_of('\n') + 1));
  fm::json::Value last = fm::json::ParseJson(lines.back());
  EXPECT_EQ(last.At("counters").Num("fm.engine.walker_steps_total"),
            mdoc.At("run").Num("total_steps"));
  EXPECT_EQ(last.At("counters").Num("fm.engine.episodes_total"), 1.0);
  // Counters are cumulative: every snapshot is monotone in every counter.
  double prev_steps = 0;
  for (const std::string& line : lines) {
    double steps = fm::json::ParseJson(line).At("counters").Num(
        "fm.engine.walker_steps_total");
    EXPECT_GE(steps, prev_steps);
    prev_steps = steps;
  }

  // fmmon --summary over the same file renders percentiles for every
  // histogram the final snapshot carries.
  auto summary = dir_ / "summary.txt";
  int mon_rc = std::system((std::string(FMMON_PATH) + " --summary " +
                            jsonl.string() + " > " + summary.string() +
                            " 2>/dev/null")
                               .c_str());
  ASSERT_EQ(mon_rc, 0);
  std::ifstream sin(summary);
  std::string stext((std::istreambuf_iterator<char>(sin)),
                    std::istreambuf_iterator<char>());
  EXPECT_NE(stext.find("p99"), std::string::npos);
  for (const auto& [name, unused] : last.At("histograms").object) {
    EXPECT_NE(stext.find(name), std::string::npos) << name;
  }
}

TEST_F(CliTest, RejectsBadUsage) {
  EXPECT_NE(Run(""), 0);                        // no input
  EXPECT_NE(Run("--graph=a --csr=b"), 0);       // both inputs
  EXPECT_NE(Run("--graph=a --algo=simrank"), 0);  // unknown algo
  EXPECT_NE(Run("--graph=" + (dir_ / "missing.txt").string()), 0);
  EXPECT_NE(Run("--graph=a --shuffle=bogus"), 0);  // unknown backend
}

}  // namespace
