// Span tracer (src/util/trace.h): disabled-mode no-op, span nesting, ring
// overflow drop-oldest accounting, multi-thread emission count determinism,
// exporter escaping/round-trip through the shared JSON parser, the progress
// heartbeat, and an end-to-end engine run whose "engine" category span totals
// must agree with the engine's own stage seconds (the two views come from the
// same steady clock; if they diverge the trace is lying).
#include "src/util/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/algorithms/deepwalk.h"
#include "src/gen/powerlaw_graph.h"
#include "src/graph/degree_sort.h"
#include "src/util/json.h"
#include "src/util/thread_pool.h"

namespace fm {
namespace {

// Every test resets the global tracer on entry and exit so ordering between
// tests (and the engine tests in other binaries) cannot leak rings.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Get().Reset(); }
  void TearDown() override { Tracer::Get().Reset(); }
};

json::Value ParseTrace() {
  return json::ParseJson(Tracer::Get().ExportJson());
}

// Collects the "X" spans from an exported document.
std::vector<json::Value> Spans(const json::Value& doc) {
  std::vector<json::Value> spans;
  for (const json::Value& e : doc.At("traceEvents").array) {
    if (e.Str("ph") == "X") {
      spans.push_back(e);
    }
  }
  return spans;
}

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    FM_TRACE_SPAN("test", "noop");
    TraceSpan named("test", "noop2");
    named.Arg("k", 1);
  }
  EXPECT_EQ(Tracer::Get().TotalEvents(), 0u);
  EXPECT_EQ(Tracer::Get().TotalDropped(), 0u);
  // No thread registered a ring either.
  json::Value doc = ParseTrace();
  EXPECT_EQ(doc.At("otherData").Num("threads"), 0);
  EXPECT_TRUE(Spans(doc).empty());
}

TEST_F(TraceTest, SpanNestingAndArgs) {
  Tracer::Get().Enable();
  {
    TraceSpan outer("test", "outer");
    outer.Arg("episode", 7);
    {
      FM_TRACE_SPAN("test", "inner");
    }
  }
  Tracer::Get().Disable();

  json::Value doc = ParseTrace();
  std::vector<json::Value> spans = Spans(doc);
  ASSERT_EQ(spans.size(), 2u);
  // Spans close inner-first, so the inner span is pushed before the outer.
  EXPECT_EQ(spans[0].Str("name"), "inner");
  EXPECT_EQ(spans[1].Str("name"), "outer");
  EXPECT_EQ(spans[1].Str("cat"), "test");
  EXPECT_EQ(spans[1].At("args").Num("episode"), 7);
  // Outer's interval contains inner's.
  double outer_ts = spans[1].Num("ts");
  double outer_end = outer_ts + spans[1].Num("dur");
  double inner_ts = spans[0].Num("ts");
  double inner_end = inner_ts + spans[0].Num("dur");
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_end, inner_end);
}

TEST_F(TraceTest, RingOverflowDropsOldest) {
  constexpr size_t kCapacity = 16;
  constexpr uint64_t kPushes = 100;
  Tracer::Get().Enable(kCapacity);
  TraceRingBuffer* ring = Tracer::Get().CurrentBuffer();
  ASSERT_NE(ring, nullptr);
  for (uint64_t i = 0; i < kPushes; ++i) {
    TraceEvent e;
    e.category = "test";
    e.name = "evt";
    e.start_ns = i;  // encode the sequence number in the timestamp
    ring->Push(e);
  }
  Tracer::Get().Disable();

  EXPECT_EQ(ring->pushed(), kPushes);
  EXPECT_EQ(ring->dropped(), kPushes - kCapacity);
  EXPECT_EQ(Tracer::Get().TotalEvents(), kPushes);
  EXPECT_EQ(Tracer::Get().TotalDropped(), kPushes - kCapacity);

  // The survivors are exactly the newest kCapacity events, oldest-first.
  std::vector<uint64_t> seq;
  ring->ForEach([&](const TraceEvent& e) { seq.push_back(e.start_ns); });
  ASSERT_EQ(seq.size(), kCapacity);
  for (size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(seq[i], kPushes - kCapacity + i);
  }

  json::Value doc = ParseTrace();
  EXPECT_EQ(doc.At("otherData").Num("dropped_events"),
            static_cast<double>(kPushes - kCapacity));
  EXPECT_EQ(doc.At("otherData").Num("exported_events"),
            static_cast<double>(kCapacity));
}

TEST_F(TraceTest, MultiThreadEmissionCountIsDeterministic) {
  constexpr uint64_t kTasks = 500;
  ThreadPool pool(4);
  Tracer::Get().Enable();
  pool.ParallelFor(kTasks, [](uint64_t task, uint32_t) {
    TraceSpan span("mt", "task");
    span.Arg("task", task);
  });
  Tracer::Get().Disable();

  // Every task emitted exactly one span, whatever the schedule; the pool's
  // barrier means all pushes happened-before this read.
  EXPECT_EQ(Tracer::Get().TotalEvents(), kTasks);
  EXPECT_EQ(Tracer::Get().TotalDropped(), 0u);
  json::Value doc = ParseTrace();
  EXPECT_EQ(Spans(doc).size(), kTasks);
  // Workers announced themselves (thread_pool.cc names them fm-worker-N), so
  // at most pool.thread_count() rings exist.
  EXPECT_LE(doc.At("otherData").Num("threads"),
            static_cast<double>(pool.thread_count()));
}

TEST_F(TraceTest, ExporterEscapesThreadNamesAndRoundTrips) {
  Tracer::Get().Enable();
  Tracer::SetThisThreadName("evil \"name\" \\ with\ncontrol\x01chars");
  FM_TRACE_SPAN("test", "one");
  Tracer::Get().Disable();

  // The exported document must parse, and the name must round-trip exactly.
  json::Value doc = ParseTrace();
  bool found = false;
  for (const json::Value& e : doc.At("traceEvents").array) {
    if (e.Str("ph") == "M" && e.Str("name") == "thread_name") {
      EXPECT_EQ(e.At("args").Str("name"),
                "evil \"name\" \\ with\ncontrol\x01chars");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Restore a sane cached name for later tests in this thread.
  Tracer::SetThisThreadName("main");
}

TEST_F(TraceTest, ProgressReporterPrintsAndCounts) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  ProgressReporter reporter(/*interval_s=*/0, sink);
  reporter.OnRunBegin(/*total_episodes=*/2, /*steps_per_episode=*/3,
                      /*total_walkers=*/100);
  for (uint64_t ep = 0; ep < 2; ++ep) {
    for (uint32_t step = 0; step < 3; ++step) {
      reporter.OnStep(ep, step, 100, 100);
    }
  }
  reporter.OnRunEnd();
  // interval 0 prints every step, plus the final line.
  EXPECT_EQ(reporter.lines_printed(), 7u);

  std::rewind(sink);
  char buf[256] = {0};
  ASSERT_NE(std::fgets(buf, sizeof(buf), sink), nullptr);
  EXPECT_NE(std::string(buf).find("[fm] ep 1/2 step 1/3"), std::string::npos);
  std::fclose(sink);
}

TEST_F(TraceTest, EngineRunAgreesWithStageSeconds) {
  PowerLawConfig config;
  config.degrees.num_vertices = 2000;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  DegreeSortedGraph sorted = DegreeSort(GeneratePowerLawGraph(config));

  Tracer::Get().Enable();
  Tracer::SetThisThreadName("main");
  EngineOptions options;
  options.record_step_stats = true;
  ProgressReporter progress(/*interval_s=*/1e9, std::tmpfile());
  options.progress = &progress;
  FlashMobEngine engine(sorted.graph, options);
  WalkSpec spec = DeepWalkSpec(sorted.graph.num_vertices(), /*steps=*/12,
                               /*rounds=*/2);
  WalkResult result = engine.Run(spec);
  Tracer::Get().Disable();

  ASSERT_GT(result.stats.total_steps, 0u);
  json::Value doc = ParseTrace();

  // All instrumented categories fired.
  double scatter_us = 0, sample_us = 0, gather_us = 0;
  std::set<std::string> cats;
  for (const json::Value& e : Spans(doc)) {
    cats.insert(e.Str("cat"));
    if (e.Str("cat") != "engine") {
      continue;
    }
    if (e.Str("name") == "scatter") {
      scatter_us += e.Num("dur");
    } else if (e.Str("name") == "sample") {
      sample_us += e.Num("dur");
    } else if (e.Str("name") == "gather") {
      gather_us += e.Num("dur");
    }
  }
  for (const char* cat : {"engine", "engine.vp", "shuffle", "plan"}) {
    EXPECT_TRUE(cats.count(cat)) << "missing category " << cat;
  }

  // The spans open before each stage's Timer starts and close after it is
  // read, so per-category sums must be >= the engine's stage seconds and —
  // with the span overhead being microseconds per step — within 5% (plus a
  // small absolute floor for very fast runs).
  double span_total_s = (scatter_us + sample_us + gather_us) / 1e6;
  double stage_total_s =
      result.stats.times.shuffle_s + result.stats.times.sample_s;
  EXPECT_GE(span_total_s, stage_total_s);
  EXPECT_LE(span_total_s, stage_total_s * 1.05 + 0.05)
      << "span total " << span_total_s << "s vs stage total " << stage_total_s
      << "s";

  // The heartbeat saw the run end.
  EXPECT_GE(progress.lines_printed(), 1u);
}

}  // namespace
}  // namespace fm
