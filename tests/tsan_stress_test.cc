// ThreadSanitizer-targeted stress suite.
//
// These tests exist to give TSan (cmake -DFM_SANITIZE=thread) dense schedules
// over the two lock-free-by-construction components: ThreadPool's epoch
// handshake and Shuffler's disjoint-region scatter/gather (§4.3 "threads work
// on disjoint array areas"). They also pin down a correctness property that
// only matters under varying parallelism: the scatter layout may depend on the
// chunk count, but the full Scatter -> Gather round trip must be bit-identical
// across 1/2/8/hardware thread counts. The suite is deterministic and cheap
// enough to run in every build mode; under TSan it is the main race detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/core/partition_plan.h"
#include "src/core/shuffle.h"
#include "src/core/walk_observer.h"
#include "src/gen/powerlaw_graph.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/telemetry.h"
#include "src/util/thread_pool.h"
#include "src/util/trace.h"

namespace fm {
namespace {

std::vector<uint32_t> StressThreadCounts() {
  std::vector<uint32_t> counts = {1, 2, 8};
  uint32_t hw = std::thread::hardware_concurrency();
  if (hw > 0 && std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  return counts;
}

CsrGraph StressGraph(Vid n) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.8;
  return GeneratePowerLawGraph(config);
}

std::vector<Vid> StressWalkers(Wid count, Vid n, uint64_t seed,
                               double dead_fraction) {
  std::vector<Vid> w(count);
  XorShiftRng rng(seed);
  for (Wid j = 0; j < count; ++j) {
    w[j] = (dead_fraction > 0 && rng.NextDouble() < dead_fraction)
               ? kInvalidVid
               : static_cast<Vid>(rng.NextBounded(n));
  }
  return w;
}

// --- ThreadPool hammering ----------------------------------------------------

TEST(TsanStressTest, ParallelForHammerAcrossThreadCounts) {
  // Many short jobs back-to-back: the epoch/handshake edges (job publication,
  // worker wake, completion barrier) are crossed thousands of times, which is
  // where a missing fence shows up under TSan.
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    uint64_t expected_total = 0;
    std::atomic<uint64_t> total{0};
    for (int round = 0; round < 200; ++round) {
      uint64_t tasks = static_cast<uint64_t>(round % 7) * 13;  // includes 0
      expected_total += tasks;
      pool.ParallelFor(tasks, [&](uint64_t, uint32_t) {
        // relaxed: pure event count; ParallelFor's join orders it before load.
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }
    EXPECT_EQ(total.load(), expected_total) << threads << " threads";
  }
}

TEST(TsanStressTest, ParallelForPublishesPlainWrites) {
  // Non-atomic writes inside a job, plain reads after the join: TSan verifies
  // the completion handshake provides the happens-before edge, exactly the way
  // the shuffle trusts it (counts written in pass 1, read by the prefix sum).
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    const uint64_t n = 1 << 16;
    std::vector<uint32_t> data(n, 0);
    for (int round = 1; round <= 10; ++round) {
      pool.ParallelFor(64, [&](uint64_t c, uint32_t) {
        uint64_t begin = c * (n / 64);
        uint64_t end = begin + (n / 64);
        for (uint64_t i = begin; i < end; ++i) {
          data[i] += static_cast<uint32_t>(round);
        }
      });
      uint64_t sum = 0;
      for (uint32_t v : data) {
        sum += v;
      }
      // 1 + 2 + ... + round, times n.
      ASSERT_EQ(sum, n * (static_cast<uint64_t>(round) * (round + 1) / 2));
    }
  }
}

TEST(TsanStressTest, ParallelChunksWorkerSlotsAreExclusive) {
  // Each worker accumulates into its own slot (the per-thread counter-array
  // pattern of CountAndPrefix). Any cross-worker interference is a race TSan
  // reports and a checksum failure here.
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    std::vector<uint64_t> per_worker(pool.thread_count(), 0);
    const uint64_t n = 100003;  // prime: uneven chunk boundaries
    for (int round = 0; round < 20; ++round) {
      pool.ParallelChunks(n, [&](uint64_t begin, uint64_t end, uint32_t worker) {
        per_worker[worker] += end - begin;
      });
    }
    uint64_t covered = 0;
    for (uint64_t c : per_worker) {
      covered += c;
    }
    EXPECT_EQ(covered, 20 * n) << threads << " threads";
  }
}

TEST(TsanStressTest, IndependentPoolsRunConcurrently) {
  // Two pools driven from two submitter threads at once: pool state must be
  // fully per-instance (no hidden globals besides ThreadPool::Global()).
  auto drive = [](ThreadPool& pool, std::atomic<uint64_t>& total) {
    for (int round = 0; round < 100; ++round) {
      pool.ParallelFor(32, [&](uint64_t, uint32_t) {
        // relaxed: pure event count; ParallelFor's join orders it before load.
        total.fetch_add(1, std::memory_order_relaxed);
      });
    }
  };
  ThreadPool pool_a(3);
  ThreadPool pool_b(2);
  std::atomic<uint64_t> total_a{0};
  std::atomic<uint64_t> total_b{0};
  std::thread ta([&] { drive(pool_a, total_a); });
  std::thread tb([&] { drive(pool_b, total_b); });
  ta.join();
  tb.join();
  EXPECT_EQ(total_a.load(), 3200u);
  EXPECT_EQ(total_b.load(), 3200u);
}

TEST(TsanStressTest, NestedDistinctPoolsUnderLoad) {
  // Outer job bodies drive an inner pool (serialized — one pool accepts one
  // job at a time): reentrancy-adjacent edge the engine's per-VP stages sit on.
  ThreadPool outer(4);
  ThreadPool inner(2);
  Mutex submit_mutex;
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 20; ++round) {
    outer.ParallelFor(8, [&](uint64_t, uint32_t) {
      MutexLock lock(submit_mutex);
      inner.ParallelFor(16, [&](uint64_t, uint32_t) {
        // relaxed: pure event count; ParallelFor's join orders it before load.
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  EXPECT_EQ(total.load(), 20u * 8 * 16);
}

TEST(TsanStressTest, PoolConstructionTeardownChurn) {
  // Construct, use once, destroy — the join-on-shutdown path, repeatedly.
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(1 + round % 4);
    std::atomic<uint32_t> hits{0};
    pool.ParallelFor(pool.thread_count() * 2,
                     [&](uint64_t, uint32_t) { ++hits; });
    ASSERT_EQ(hits.load(), pool.thread_count() * 2);
  }
}

// --- Shuffler determinism across thread counts -------------------------------

class ShuffleDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = StressGraph(20000);
    plan_ = PartitionPlan::BuildUniform(graph_, 64, SamplePolicy::kDS);
  }
  CsrGraph graph_;
  PartitionPlan plan_;
};

TEST_F(ShuffleDeterminismTest, RoundTripIsIdenticalAcrossThreadCounts) {
  const Wid n = 60000;
  auto w = StressWalkers(n, graph_.num_vertices(), 0xBEEF, 0.1);
  std::vector<Vid> aux(n);
  for (Wid j = 0; j < n; ++j) {
    aux[j] = static_cast<Vid>(j * 2654435761u);
  }

  std::vector<Vid> ref_next;      // 1-thread reference round trip
  std::vector<Vid> ref_aux_next;  // aux carried through the same permutation
  std::map<uint32_t, std::vector<Vid>> ref_per_vp;
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    Shuffler shuffler(&plan_, &pool);
    std::vector<Vid> sw(n), sw_aux(n), w_next(n), aux_next(n);
    shuffler.Scatter(w.data(), aux.data(), n, sw.data(), sw_aux.data());

    // The SW layout may legally differ by chunk count, but each VP chunk must
    // hold the same multiset of walkers regardless of parallelism.
    const auto& offs = shuffler.vp_offsets();
    ASSERT_EQ(offs.back(), n);
    std::map<uint32_t, std::vector<Vid>> per_vp;
    for (uint32_t vp = 0; vp < plan_.num_vps(); ++vp) {
      std::vector<Vid> chunk(sw.begin() + offs[vp], sw.begin() + offs[vp + 1]);
      std::sort(chunk.begin(), chunk.end());
      per_vp[vp] = std::move(chunk);
    }
    if (threads == 1) {
      ref_per_vp = per_vp;
    } else {
      ASSERT_EQ(per_vp, ref_per_vp) << threads << " threads";
    }

    ASSERT_TRUE(shuffler
                    .Gather(w.data(), n, sw.data(), w_next.data(),
                            sw_aux.data(), aux_next.data())
                    .ok());
    if (threads == 1) {
      ref_next = w_next;
      ref_aux_next = aux_next;
      // The untouched round trip must be the identity on both streams.
      EXPECT_EQ(w_next, w);
      EXPECT_EQ(aux_next, aux);
    } else {
      ASSERT_EQ(w_next, ref_next) << threads << " threads";
      ASSERT_EQ(aux_next, ref_aux_next) << threads << " threads";
    }
  }
}

TEST_F(ShuffleDeterminismTest, RepeatedScatterGatherIsStable) {
  // Same Shuffler object reused across many steps (the engine's pattern) while
  // the "sample stage" rewrites SW in place between the passes.
  const Wid n = 30000;
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    Shuffler shuffler(&plan_, &pool);
    auto w = StressWalkers(n, graph_.num_vertices(), 0xF00D, 0.0);
    std::vector<Vid> sw(n), w_next(n);
    for (int step = 0; step < 10; ++step) {
      shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
      for (Wid p = 0; p < n; ++p) {
        sw[p] = (sw[p] + 1) % graph_.num_vertices();  // fake sample: v -> v+1
      }
      ASSERT_TRUE(shuffler
                      .Gather(w.data(), n, sw.data(), w_next.data(), nullptr,
                              nullptr)
                      .ok());
      for (Wid j = 0; j < n; ++j) {
        ASSERT_EQ(w_next[j], (w[j] + 1) % graph_.num_vertices());
      }
      w.swap(w_next);
    }
  }
}

// --- ShardedVisitCounter merge hammering -------------------------------------

TEST(TsanStressTest, ShardedCounterMergeAcrossThreadCounts) {
  // The engine's counting path in miniature: concurrent chunk callbacks fill
  // per-worker shards — placement via pinned ParallelChunks, samples via
  // dynamically scheduled ParallelFor tasks with kills mixed in — and
  // MergeShards folds the shards on the same pool once per "episode". uint64
  // adds commute, so the merged counts must be exact at every thread count;
  // under TSan this is the main race check for the sharded accumulation.
  const Vid n = 4096;
  const Wid walkers = 100003;  // prime: uneven chunk boundaries
  const uint64_t kTasks = 64;  // dynamic "VP" tasks per sample pass
  std::vector<Vid> start(walkers), sampled(walkers);
  for (Wid j = 0; j < walkers; ++j) {
    start[j] = static_cast<Vid>((j * 2654435761u) % n);
    // Every 7th sample is a kill; kills must not be counted.
    sampled[j] =
        (j % 7 == 0) ? kInvalidVid : static_cast<Vid>((j * 40503u) % n);
  }
  const int kEpisodes = 6;
  const int kStepsPerEpisode = 3;
  std::vector<uint64_t> expected(n, 0);
  for (Wid j = 0; j < walkers; ++j) {
    expected[start[j]] += kEpisodes;
    if (sampled[j] != kInvalidVid) {
      expected[sampled[j]] += kEpisodes * kStepsPerEpisode;
    }
  }

  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    ShardedVisitCounter counter(n);
    WalkRunInfo info;
    info.num_vertices = n;
    info.total_walkers = walkers;
    info.num_workers = pool.thread_count();
    info.pool = &pool;
    counter.OnRunBegin(info);
    for (int episode = 0; episode < kEpisodes; ++episode) {
      pool.ParallelChunks(
          walkers, [&](uint64_t begin, uint64_t end, uint32_t worker) {
            counter.OnPlacementChunk(
                static_cast<Wid>(begin),
                std::span<const Vid>(start.data() + begin, end - begin),
                worker);
          });
      for (int step = 0; step < kStepsPerEpisode; ++step) {
        pool.ParallelFor(kTasks, [&](uint64_t task, uint32_t worker) {
          uint64_t begin = task * walkers / kTasks;
          uint64_t end = (task + 1) * walkers / kTasks;
          counter.OnSampleChunk(
              static_cast<uint32_t>(step), static_cast<uint32_t>(task),
              std::span<const Vid>(sampled.data() + begin, end - begin),
              worker);
        });
      }
      counter.MergeShards(&pool);
    }
    EXPECT_EQ(counter.TakeCounts(), expected) << threads << " threads";
  }
}

TEST_F(ShuffleDeterminismTest, BinnedRoundTripMatchesDirectUnderThreads) {
  // The binned backend's pass 1 has every worker appending into its own
  // (worker, bin) write-combining buffers and flushing into per-(chunk, bin)
  // arena regions — all disjoint by construction, which is exactly what TSan
  // should confirm under dense schedules. Correctness bar: bit-identical SW to
  // direct at the same chunk count, identical round trip at every count.
  const Wid n = 60000;
  auto w = StressWalkers(n, graph_.num_vertices(), 0xD00D, 0.1);
  std::vector<Vid> aux(n);
  for (Wid j = 0; j < n; ++j) {
    aux[j] = static_cast<Vid>(j * 2654435761u);
  }
  ShufflePlan sp;  // one bin per vp, minimal buffers: maximal flush churn
  for (uint32_t vp = 0; vp <= plan_.num_vps(); ++vp) {
    sp.bin_first_vp.push_back(vp);
  }
  sp.buffer_records = 16;
  ShuffleConfig cfg;
  cfg.kind = ShuffleBackendKind::kBinned;
  cfg.shuffle_plan = &sp;

  std::vector<Vid> ref_next;
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    Shuffler direct(&plan_, &pool);
    Shuffler binned(&plan_, &pool, cfg);
    ShuffleArena arena;
    binned.AttachArena(&arena);
    std::vector<Vid> sw_a(n), aux_a(n), sw_b(n), aux_b(n);
    direct.Scatter(w.data(), aux.data(), n, sw_a.data(), aux_a.data());
    binned.Scatter(w.data(), aux.data(), n, sw_b.data(), aux_b.data());
    ASSERT_EQ(sw_b, sw_a) << threads << " threads";
    ASSERT_EQ(aux_b, aux_a) << threads << " threads";
    std::vector<Vid> w_next(n), aux_next(n);
    ASSERT_TRUE(binned
                    .Gather(w.data(), n, sw_b.data(), w_next.data(),
                            aux_b.data(), aux_next.data())
                    .ok());
    EXPECT_EQ(w_next, w);
    EXPECT_EQ(aux_next, aux);
    if (threads == 1) {
      ref_next = w_next;
    } else {
      ASSERT_EQ(w_next, ref_next) << threads << " threads";
    }
  }
}

TEST_F(ShuffleDeterminismTest, BinnedRepeatedStepsHammerWriteBuffers) {
  // Engine-pattern reuse: the same binned Shuffler (and arena) across many
  // steps, with the sample stage rewriting SW in place between the passes.
  // Small buffers + many bins keep every worker's flush path hot.
  const Wid n = 30000;
  ShufflePlan sp;
  for (uint32_t vp = 0; vp <= plan_.num_vps(); ++vp) {
    sp.bin_first_vp.push_back(vp);
  }
  sp.buffer_records = 16;
  ShuffleConfig cfg;
  cfg.kind = ShuffleBackendKind::kBinned;
  cfg.shuffle_plan = &sp;
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    Shuffler shuffler(&plan_, &pool, cfg);
    ShuffleArena arena;
    shuffler.AttachArena(&arena);
    auto w = StressWalkers(n, graph_.num_vertices(), 0xFEED, 0.0);
    std::vector<Vid> sw(n), w_next(n);
    for (int step = 0; step < 10; ++step) {
      shuffler.Scatter(w.data(), nullptr, n, sw.data(), nullptr);
      for (Wid p = 0; p < n; ++p) {
        sw[p] = (sw[p] + 1) % graph_.num_vertices();  // fake sample: v -> v+1
      }
      ASSERT_TRUE(shuffler
                      .Gather(w.data(), n, sw.data(), w_next.data(), nullptr,
                              nullptr)
                      .ok());
      for (Wid j = 0; j < n; ++j) {
        ASSERT_EQ(w_next[j], (w[j] + 1) % graph_.num_vertices());
      }
      w.swap(w_next);
    }
  }
}

TEST_F(ShuffleDeterminismTest, TwoLevelPathMatchesDirectUnderThreads) {
  const Wid n = 40000;
  auto w = StressWalkers(n, graph_.num_vertices(), 0xCAFE, 0.05);
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    Shuffler direct(&plan_, &pool);
    Shuffler two_level(&plan_, &pool);
    std::vector<Vid> sw_a(n), sw_b(n);
    direct.Scatter(w.data(), nullptr, n, sw_a.data(), nullptr);
    two_level.ScatterTwoLevelForTest(w.data(), nullptr, n, sw_b.data(), nullptr);
    ASSERT_EQ(sw_a, sw_b) << threads << " threads";
  }
}

// --- interleaved ring executor under concurrency -----------------------------

TEST(TsanStressTest, InterleavedEngineHammerAcrossThreadCounts) {
  // Full engine runs with a deep sample-stage ring: every worker keeps 16
  // walkers in flight, issuing prefetches against shared read-only state (CSR
  // arrays, alias rows) while writing its disjoint SW region and folding its
  // local InterleaveStats shard. The ring is per-worker by construction —
  // TSan's job here is to confirm the stats folds and the prefetch targets
  // never introduce a cross-worker write. Correctness bar: bit-identical
  // visit counts across thread counts at depth 16, and between depths.
  CsrGraph g = StressGraph(4000);
  WalkSpec spec;
  spec.steps = 8;
  spec.num_walkers = 3 * g.num_vertices();
  spec.seed = 77;
  spec.stop_probability = 0.2;  // constant mid-ring deaths and refills
  spec.keep_paths = false;

  std::vector<uint64_t> reference;
  for (uint32_t threads : StressThreadCounts()) {
    ThreadPool pool(threads);
    EngineOptions options;
    options.pool = &pool;
    options.plan.threads_sharing_l3 = 4;  // pin the plan across pool sizes
    options.interleave_depth = 16;
    FlashMobEngine engine(g, options);
    WalkResult result = engine.Run(spec);
    EXPECT_EQ(result.stats.interleave_depth, 16u);
    EXPECT_GT(result.stats.prefetch.Total(), 0u);
    if (reference.empty()) {
      reference = std::move(result.visit_counts);
    } else {
      ASSERT_EQ(result.visit_counts, reference) << threads << " threads";
    }
  }

  // Depth must be invisible: the deep-ring result equals a sequential run.
  ThreadPool pool(4);
  EngineOptions options;
  options.pool = &pool;
  options.plan.threads_sharing_l3 = 4;
  options.interleave_depth = 1;
  FlashMobEngine engine(g, options);
  ASSERT_EQ(engine.Run(spec).visit_counts, reference);
}

// --- telemetry shards under concurrency --------------------------------------

// Dense schedules over the telemetry registry: every pool worker hammers a
// counter and a histogram through the single-writer shard path while the main
// thread snapshots, renders both exporters, and a snapshot writer appends
// JSONL lines from its own thread. Folds use relaxed loads over cells the
// workers write with relaxed stores — TSan confirms the sharding really does
// keep writers disjoint, and the final fold (after the pool barrier) is exact.
TEST(TsanStressTest, TelemetryShardsConcurrentUpdateAndSnapshot) {
  auto& registry = telemetry::TelemetryRegistry::Get();
  registry.ResetForTest();
  telemetry::Counter& counter =
      registry.CounterRef("fm.test.tsan_steps_total");
  telemetry::Gauge& gauge = registry.GaugeRef("fm.test.tsan_level");
  telemetry::Histogram& hist = registry.HistogramRef("fm.test.tsan_ns");

  constexpr uint64_t kTasks = 4096;
  constexpr uint64_t kPerTask = 64;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    // Live snapshots concurrent with the writers: values may lag but must
    // never tear, and the renderers must stay parseable mid-run.
    while (!done.load(std::memory_order_acquire)) {
      uint64_t folded = counter.Value();
      EXPECT_LE(folded, kTasks * kPerTask);
      json::Value doc = json::ParseJson(registry.RenderJsonLine(1));
      EXPECT_EQ(doc.Str("schema"), "fm-telemetry-v1");
      registry.RenderPrometheus();
    }
  });

  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](uint64_t task, uint32_t) {
    for (uint64_t i = 0; i < kPerTask; ++i) {
      counter.Add(1);
      hist.Observe(task + i);
    }
    gauge.Set(static_cast<int64_t>(task));
  });
  done.store(true, std::memory_order_release);
  reader.join();

  // The pool barrier ordered every shard store before these folds.
  EXPECT_EQ(counter.Value(), kTasks * kPerTask);
  EXPECT_EQ(hist.Snapshot().count, kTasks * kPerTask);
}

TEST(TsanStressTest, TelemetryWriterThreadConcurrentWithUpdates) {
  auto& registry = telemetry::TelemetryRegistry::Get();
  registry.ResetForTest();
  telemetry::Counter& counter =
      registry.CounterRef("fm.test.tsan_writer_total");

  const std::string path =
      ::testing::TempDir() + "/tsan_telemetry_writer.jsonl";
  telemetry::TelemetrySnapshotWriter writer(path, 1);
  ASSERT_TRUE(writer.Start());

  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](uint64_t, uint32_t) { counter.Add(1); });
  }
  writer.Stop();

  EXPECT_EQ(counter.Value(), 50u * 64);
  EXPECT_GE(writer.lines_written(), 1u);
  std::remove(path.c_str());
}

// --- trace ring buffers under concurrency ------------------------------------

// Many threads emit spans into small per-thread rings (forcing overflow) while
// the main thread polls the tracer's live counters — exactly the heartbeat's
// read pattern. After the pool barrier the export must parse and the pushed /
// dropped accounting must be exact. Under TSan this validates the relaxed
// single-writer ring + live-counter-read design.
TEST(TsanStressTest, TraceRingsConcurrentEmitAndLivePoll) {
  constexpr uint64_t kTasks = 20000;
  constexpr size_t kRingCapacity = 64;  // small: force drop-oldest overflow
  Tracer::Get().Reset();
  Tracer::Get().Enable(kRingCapacity);

  std::atomic<bool> done{false};
  std::thread poller([&] {
    // Live polling, concurrent with the writers (relaxed counter reads).
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      uint64_t now = Tracer::Get().TotalEvents();
      EXPECT_GE(now, last);  // pushed counters are monotonic
      last = now;
      Tracer::Get().TotalDropped();
    }
  });

  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [](uint64_t task, uint32_t) {
    TraceSpan span("stress", "task");
    span.Arg("task", task);
  });
  done.store(true, std::memory_order_release);
  poller.join();
  Tracer::Get().Disable();

  // The pool barrier ordered every push before these reads: counts are exact.
  EXPECT_EQ(Tracer::Get().TotalEvents(), kTasks);
  EXPECT_GT(Tracer::Get().TotalDropped(), 0u);
  EXPECT_LE(Tracer::Get().TotalEvents() - Tracer::Get().TotalDropped(),
            static_cast<uint64_t>(kRingCapacity) * (8 + 1));

  // Export after quiescence parses and its accounting matches the counters.
  json::Value doc = json::ParseJson(Tracer::Get().ExportJson());
  EXPECT_EQ(doc.At("otherData").Num("dropped_events"),
            static_cast<double>(Tracer::Get().TotalDropped()));
  Tracer::Get().Reset();
}

}  // namespace
}  // namespace fm
