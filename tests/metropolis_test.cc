// Metropolis-Hastings walk tests: transition validity and the headline property —
// a uniform stationary distribution on undirected graphs regardless of degree skew.
#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/gen/powerlaw_graph.h"
#include "src/graph/degree_sort.h"
#include "src/util/stats.h"
#include "tests/test_util.h"

namespace fm {
namespace {

// Undirected skewed graph (symmetrized power-law).
CsrGraph UndirectedSkewed(Vid n) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 6;
  config.degrees.alpha = 0.8;
  config.degrees.max_degree = n / 8;
  CsrGraph directed = GeneratePowerLawGraph(config);
  GraphBuilder b(n);
  for (Vid v = 0; v < n; ++v) {
    for (Vid u : directed.neighbors(v)) {
      if (u != v) {
        b.AddEdge(v, u);
        b.AddEdge(u, v);
      }
    }
  }
  return DegreeSort(b.Build({.remove_duplicate_edges = true})).graph;
}

TEST(MetropolisTest, StepsAreEdgesOrStays) {
  CsrGraph g = UndirectedSkewed(2000);
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.algorithm = WalkAlgorithm::kMetropolisHastings;
  spec.steps = 8;
  spec.num_walkers = 5000;
  WalkResult result = engine.Run(spec);
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    for (uint32_t s = 0; s < 8; ++s) {
      Vid from = result.paths.At(w, s);
      Vid to = result.paths.At(w, s + 1);
      ASSERT_TRUE(to == from || g.HasEdge(from, to)) << from << "->" << to;
    }
  }
}

TEST(MetropolisTest, StationaryDistributionIsUniformDespiteSkew) {
  // The whole point of MH: on this heavily skewed graph the plain walk
  // concentrates on hubs, while the MH walk's long-run visit distribution is
  // uniform over vertices.
  CsrGraph g = UndirectedSkewed(300);
  WalkSpec spec;
  spec.steps = 200;  // long walks: forget the (uniform-over-edges) start bias
  spec.num_walkers = 30000;
  spec.keep_paths = true;
  spec.seed = 5;

  spec.algorithm = WalkAlgorithm::kMetropolisHastings;
  FlashMobEngine engine(g);
  WalkResult mh = engine.Run(spec);
  // Sample only the final position of each walker (near-stationary, independent
  // across walkers).
  std::vector<uint64_t> mh_counts(g.num_vertices(), 0);
  uint64_t mh_total = 0;
  for (Wid w = 0; w < mh.paths.num_walkers(); ++w) {
    ++mh_counts[mh.paths.At(w, spec.steps)];
    ++mh_total;
  }
  std::vector<double> expected(g.num_vertices(),
                               static_cast<double>(mh_total) / g.num_vertices());
  // Uniformity at a loose significance (MH mixes slower than the plain walk).
  EXPECT_TRUE(ChiSquareTestPasses(mh_counts, expected, 1e-6));

  // Contrast: the plain DeepWalk final-position distribution is degree-biased and
  // decisively fails the same uniformity test.
  spec.algorithm = WalkAlgorithm::kDeepWalk;
  FlashMobEngine engine2(g);
  WalkResult dw = engine2.Run(spec);
  std::vector<uint64_t> dw_counts(g.num_vertices(), 0);
  for (Wid w = 0; w < dw.paths.num_walkers(); ++w) {
    ++dw_counts[dw.paths.At(w, spec.steps)];
  }
  EXPECT_FALSE(ChiSquareTestPasses(dw_counts, expected, 1e-6));
}

TEST(MetropolisTest, RejectsWeightedSpec) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(1, 0, 1.0f);
  CsrGraph g = b.Build();
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.algorithm = WalkAlgorithm::kMetropolisHastings;
  spec.use_edge_weights = true;
  spec.num_walkers = 10;
  spec.steps = 1;
  EXPECT_DEATH(engine.Run(spec), "first-order uniform");
}

TEST(MetropolisTest, RegularGraphNeverRejects) {
  // Equal degrees => acceptance ratio 1 => behaves exactly like DeepWalk (always
  // moves along an edge).
  CsrGraph g = RingGraph(64);
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.algorithm = WalkAlgorithm::kMetropolisHastings;
  spec.steps = 10;
  spec.num_walkers = 1000;
  WalkResult result = engine.Run(spec);
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    for (uint32_t s = 0; s < 10; ++s) {
      ASSERT_EQ(result.paths.At(w, s + 1),
                (result.paths.At(w, s) + 1) % 64);  // degree-1 ring: must move
    }
  }
}

}  // namespace
}  // namespace fm
