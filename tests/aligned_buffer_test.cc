#include "src/util/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

namespace fm {
namespace {

TEST(AlignedBufferTest, AlignmentIsCacheLine) {
  for (size_t count : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<uint32_t> buf(count);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
    EXPECT_EQ(buf.size(), count);
  }
}

TEST(AlignedBufferTest, EmptyBuffer) {
  AlignedBuffer<uint64_t> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
  AlignedBuffer<uint64_t> zero(0);
  EXPECT_TRUE(zero.empty());
}

TEST(AlignedBufferTest, ReadWriteAndFillZero) {
  AlignedBuffer<uint64_t> buf(128);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = i * 3;
  }
  for (size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], i * 3);
  }
  buf.FillZero();
  for (uint64_t v : buf) {
    ASSERT_EQ(v, 0u);
  }
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<int> a(16);
  a[0] = 42;
  int* ptr = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(a.data(), nullptr);

  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), ptr);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBufferTest, ReallocateReplacesContents) {
  AlignedBuffer<int> buf(4);
  buf.Allocate(1024);
  EXPECT_EQ(buf.size(), 1024u);
  buf[1023] = 1;
  EXPECT_EQ(buf[1023], 1);
}

}  // namespace
}  // namespace fm
