// Statistical walk-correctness oracles: chi-square goodness-of-fit of the
// empirical next-hop frequencies produced by the sample-stage kernels against
// the *exact* transition probabilities read off the CSR.
//
// Methodology: for every start vertex we park `kDraws` walkers on it, run one
// kernel step, and compare the next-hop histogram against the exact per-edge
// distribution with Pearson's chi-square at significance 0.001 (critical value
// from the Wilson–Hilferty approximation in util/stats.h; e.g. dof=7 ->
// ~24.3). All seeds are fixed, so a pass is reproducible — the 0.001 level
// bounds the chance that the *fixed* sampled stream trips the test by luck; it
// did not for the seeds recorded here, and any code change that skews the
// distribution beyond noise moves the statistic by orders of magnitude.
//
// Every oracle additionally runs through the interleaved ring executor at
// depths {1, 4, 16} (src/core/interleave.h) and asserts the outputs are
// *bit-identical* to the sequential kernel — the per-walker RNG streams make
// interleave depth a pure performance knob, so one chi-square verdict covers
// every depth. Depth 1 exercises the ring's sequential degenerate path, which
// pins the ring stage machines draw-for-draw to the plain kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/algorithms/node2vec.h"
#include "src/core/interleave.h"
#include "src/core/presample.h"
#include "src/core/sample_stage.h"
#include "src/graph/degree_sort.h"
#include "src/graph/graph_builder.h"
#include "src/sampling/vertex_alias.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "tests/test_util.h"

namespace fm {
namespace {

constexpr Wid kDraws = 1 << 15;
constexpr double kSignificance = 0.001;

// Ring depths every oracle is replayed at; results must match the sequential
// kernel bitwise at each of them.
constexpr uint32_t kOracleDepths[] = {1, 4, 16};

// Deterministic mixed-degree test graph: degrees spread 2..12 so the oracle
// exercises short and long adjacency lists (and, sorted descending, a mix of
// uniform- and mixed-degree partitions). Adjacency lists are duplicate-free,
// every vertex has out-degree >= 2, weights cycle through {1, 2, 3, 4}.
CsrGraph OracleGraph(bool weighted) {
  const Vid n = 24;
  GraphBuilder b(n);
  XorShiftRng rng(2024);
  for (Vid v = 0; v < n; ++v) {
    Degree deg = 2 + static_cast<Degree>(v % 11);
    std::vector<bool> used(n, false);
    used[v] = true;
    for (Degree i = 0; i < deg; ++i) {
      Vid t;
      do {
        t = static_cast<Vid>(rng.NextBounded(n));
      } while (used[t]);
      used[t] = true;
      float w = weighted ? static_cast<float>(1 + (v + i) % 4) : 1.0f;
      b.AddEdge(v, t, w);
    }
  }
  return DegreeSort(b.Build()).graph;
}

// Exact first-order transition probabilities of v's out-edges (aligned with
// graph.neighbors(v)): uniform 1/d(v), or w(e)/sum(w) on weighted graphs.
std::vector<double> FirstOrderProbs(const CsrGraph& g, Vid v, bool weighted) {
  auto nbrs = g.neighbors(v);
  std::vector<double> probs(nbrs.size());
  if (weighted) {
    auto ws = g.neighbor_weights(v);
    double total = 0;
    for (float w : ws) {
      total += w;
    }
    for (size_t i = 0; i < nbrs.size(); ++i) {
      probs[i] = ws[i] / total;
    }
  } else {
    for (size_t i = 0; i < nbrs.size(); ++i) {
      probs[i] = 1.0 / static_cast<double>(nbrs.size());
    }
  }
  return probs;
}

// One first-order kernel step for kDraws walkers parked on v. depth == 0 runs
// the plain sequential kernel; depth >= 1 runs the ring executor. A fresh
// PresampleBuffers per call keeps PS runs comparable: consumption order is
// walker order at every depth (ring inits are monotone), and a refill draws
// from the triggering walker's RNG stream, so identical consumption sequences
// produce identical draws.
std::vector<Vid> RunFirstOrderStep(const CsrGraph& g, const PartitionPlan& plan,
                                   const VertexAliasTables* alias, Vid v,
                                   double stop_probability, uint64_t chunk_seed,
                                   uint32_t depth) {
  PresampleBuffers buffers(g, plan);
  std::vector<Vid> walkers(kDraws, v);
  NullMemHook hook;
  if (depth == 0) {
    SampleVpFirstOrder(g, 0, plan.vp(0), &buffers, walkers.data(), kDraws,
                       stop_probability, alias, chunk_seed, hook);
  } else {
    SampleVpFirstOrderInterleaved(g, 0, plan.vp(0), &buffers, walkers.data(),
                                  kDraws, stop_probability, alias, chunk_seed,
                                  depth, hook);
  }
  return walkers;
}

// Runs one first-order kernel step for kDraws walkers parked on each vertex in
// turn, asserts the ring executor reproduces the sequential kernel bitwise at
// every oracle depth, and chi-squares the next-hop histogram against the exact
// distribution.
void CheckFirstOrderOracle(const CsrGraph& g, SamplePolicy policy,
                           bool weighted, uint64_t seed) {
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, policy);
  std::unique_ptr<VertexAliasTables> alias;
  if (weighted) {
    alias = std::make_unique<VertexAliasTables>(g);
  }
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(g.degree(v), 2u);
    const uint64_t chunk_seed = DeriveSeed(seed, v);
    std::vector<Vid> walkers =
        RunFirstOrderStep(g, plan, alias.get(), v, 0.0, chunk_seed, 0);
    for (uint32_t depth : kOracleDepths) {
      std::vector<Vid> ring =
          RunFirstOrderStep(g, plan, alias.get(), v, 0.0, chunk_seed, depth);
      ASSERT_EQ(ring, walkers)
          << "interleave depth " << depth << " diverged at vertex " << v;
    }
    std::vector<uint64_t> counts(g.num_vertices(), 0);
    for (Vid next : walkers) {
      ASSERT_TRUE(g.HasEdge(v, next)) << "invalid hop " << v << "->" << next;
      ++counts[next];
    }
    auto nbrs = g.neighbors(v);
    std::vector<double> probs = FirstOrderProbs(g, v, weighted);
    std::vector<uint64_t> observed;
    std::vector<double> expected;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      observed.push_back(counts[nbrs[i]]);
      expected.push_back(probs[i] * kDraws);
    }
    EXPECT_TRUE(ChiSquareTestPasses(observed, expected, kSignificance))
        << "vertex " << v << " deg " << nbrs.size() << " chi2="
        << ChiSquareStatistic(observed, expected) << " > critical("
        << nbrs.size() - 1 << ", 0.001)="
        << ChiSquareCriticalValue(static_cast<uint32_t>(nbrs.size() - 1),
                                  kSignificance);
  }
}

TEST(DistributionOracleTest, DirectSamplingMatchesCsrProbabilities) {
  CheckFirstOrderOracle(OracleGraph(false), SamplePolicy::kDS,
                        /*weighted=*/false, /*seed=*/11);
}

TEST(DistributionOracleTest, PreSamplingMatchesCsrProbabilities) {
  // PS draws travel through per-vertex refill buffers (production batched,
  // consumption sequential); the observable distribution must be identical to
  // DS's — the paper's core "statistically indistinguishable" claim (§4.2).
  CheckFirstOrderOracle(OracleGraph(false), SamplePolicy::kPS,
                        /*weighted=*/false, /*seed=*/12);
}

TEST(DistributionOracleTest, WeightedDirectSamplingMatchesEdgeWeights) {
  CheckFirstOrderOracle(OracleGraph(true), SamplePolicy::kDS,
                        /*weighted=*/true, /*seed=*/13);
}

TEST(DistributionOracleTest, WeightedPreSamplingMatchesEdgeWeights) {
  // Weights are baked in at refill time (alias draw per produced sample);
  // consumers stay oblivious, so the distribution must still match w(e)/sum(w).
  CheckFirstOrderOracle(OracleGraph(true), SamplePolicy::kPS,
                        /*weighted=*/true, /*seed=*/14);
}

TEST(DistributionOracleTest, UniformDegreeFastPathMatchesCsrProbabilities) {
  // A regular graph forces the arithmetic-indexing DS fast path (no offset
  // lookup); it must sample the same uniform distribution.
  GraphBuilder b(16);
  XorShiftRng gen(7);
  for (Vid v = 0; v < 16; ++v) {
    std::vector<bool> used(16, false);
    used[v] = true;
    for (int i = 0; i < 6; ++i) {
      Vid t;
      do {
        t = static_cast<Vid>(gen.NextBounded(16));
      } while (used[t]);
      used[t] = true;
      b.AddEdge(v, t);
    }
  }
  CsrGraph g = DegreeSort(b.Build()).graph;
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  ASSERT_TRUE(plan.vp(0).uniform_degree);
  CheckFirstOrderOracle(g, SamplePolicy::kDS, /*weighted=*/false, /*seed=*/15);
}

TEST(DistributionOracleTest, Node2VecMatchesExactTransitionProbs) {
  // Second-order rejection sampler against the exact Grover-Leskovec
  // distribution, across contrasting (p, q) regimes and several (prev, cur)
  // edges. prev must be a real predecessor so the 1/p return weight and the
  // connectivity-check 1.0 weight both get exercised. The rejection loop makes
  // a variable number of draws per walker, so the depth sweep also proves the
  // ring replays retries draw-for-draw.
  CsrGraph g = OracleGraph(false);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  NullMemHook hook;
  const Node2VecParams settings[] = {{0.25, 4.0}, {4.0, 0.25}, {1.0, 1.0}};
  uint64_t seed = 21;
  for (const Node2VecParams& params : settings) {
    for (Vid prev = 0; prev < g.num_vertices(); prev += 5) {
      auto prev_nbrs = g.neighbors(prev);
      Vid cur = prev_nbrs[prev_nbrs.size() / 2];
      const uint64_t chunk_seed = seed++;
      std::vector<Vid> walkers(kDraws, cur);
      std::vector<Vid> prevs(kDraws, prev);
      SampleVpNode2Vec(g, plan.vp(0), params, walkers.data(), prevs.data(),
                       kDraws, 0.0, /*update_prevs=*/false, chunk_seed, hook);
      for (uint32_t depth : kOracleDepths) {
        std::vector<Vid> ring_walkers(kDraws, cur);
        std::vector<Vid> ring_prevs(kDraws, prev);
        SampleVpNode2VecInterleaved(g, plan.vp(0), params, ring_walkers.data(),
                                    ring_prevs.data(), kDraws, 0.0,
                                    /*update_prevs=*/false, chunk_seed, depth,
                                    hook);
        ASSERT_EQ(ring_walkers, walkers)
            << "interleave depth " << depth << " diverged (p=" << params.p
            << " q=" << params.q << " prev=" << prev << ")";
        ASSERT_EQ(ring_prevs, prevs);
      }
      std::vector<uint64_t> counts(g.num_vertices(), 0);
      for (Vid next : walkers) {
        ASSERT_TRUE(g.HasEdge(cur, next));
        ++counts[next];
      }
      auto exact = Node2VecTransitionProbs(g, cur, prev, params);
      auto nbrs = g.neighbors(cur);
      std::vector<uint64_t> observed;
      std::vector<double> expected;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        observed.push_back(counts[nbrs[i]]);
        expected.push_back(exact[i] * kDraws);
      }
      EXPECT_TRUE(ChiSquareTestPasses(observed, expected, kSignificance))
          << "p=" << params.p << " q=" << params.q << " prev=" << prev
          << " cur=" << cur
          << " chi2=" << ChiSquareStatistic(observed, expected);
    }
  }
}

TEST(DistributionOracleTest, MetropolisHastingsMatchesAcceptanceProbs) {
  // MH proposes a uniform neighbor u and accepts with min(1, d(v)/d(u));
  // rejection keeps the walker at v. Exact next-hop distribution:
  //   P(u) = (1/d(v)) * min(1, d(v)/d(u))   for each neighbor u
  //   P(v) = 1 - sum_u P(u)                 (the rejection mass)
  // The acceptance draw is short-circuited when d(v) >= d(u) (no RNG
  // consumed), so depth-identical results also pin the ring's replication of
  // the conditional-draw pattern — the "identical accept decisions" oracle.
  CsrGraph g = OracleGraph(false);
  NullMemHook hook;
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    double dv = static_cast<double>(nbrs.size());
    std::vector<double> probs(nbrs.size());
    double stay = 1.0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      double du = static_cast<double>(g.degree(nbrs[i]));
      probs[i] = (1.0 / dv) * std::min(1.0, dv / du);
      stay -= probs[i];
    }
    const uint64_t chunk_seed = DeriveSeed(31, v);
    std::vector<Vid> walkers(kDraws, v);
    SampleVpMetropolis(g, walkers.data(), kDraws, 0.0, chunk_seed, hook);
    for (uint32_t depth : kOracleDepths) {
      std::vector<Vid> ring(kDraws, v);
      SampleVpMetropolisInterleaved(g, ring.data(), kDraws, 0.0, chunk_seed,
                                    depth, hook);
      ASSERT_EQ(ring, walkers)
          << "interleave depth " << depth << " diverged at vertex " << v;
    }
    std::vector<uint64_t> counts(g.num_vertices(), 0);
    for (Vid next : walkers) {
      ASSERT_TRUE(next == v || g.HasEdge(v, next));
      ++counts[next];
    }
    std::vector<uint64_t> observed;
    std::vector<double> expected;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      observed.push_back(counts[nbrs[i]]);
      expected.push_back(probs[i] * kDraws);
    }
    // The rejection bucket only exists when some neighbor out-ranks v.
    if (stay > 1e-9) {
      observed.push_back(counts[v]);
      expected.push_back(stay * kDraws);
    } else {
      ASSERT_EQ(counts[v], 0u);
    }
    EXPECT_TRUE(ChiSquareTestPasses(observed, expected, kSignificance))
        << "vertex " << v
        << " chi2=" << ChiSquareStatistic(observed, expected);
  }
}

TEST(DistributionOracleTest, StopProbabilityBucketsAsBernoulli) {
  // With stop probability s, the next-hop distribution becomes:
  // kInvalidVid with mass s, neighbor u with mass (1-s)/d(v). One more exact
  // oracle the engine's PPR-style termination must satisfy. Early deaths free
  // ring slots out of order, so this is also the oracle that stresses the
  // ring's refill path at every depth.
  CsrGraph g = OracleGraph(false);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  const double s = 0.15;
  const uint64_t chunk_seed = 41;
  const Vid v = 3;
  std::vector<Vid> walkers =
      RunFirstOrderStep(g, plan, nullptr, v, s, chunk_seed, 0);
  for (uint32_t depth : kOracleDepths) {
    std::vector<Vid> ring =
        RunFirstOrderStep(g, plan, nullptr, v, s, chunk_seed, depth);
    ASSERT_EQ(ring, walkers) << "interleave depth " << depth << " diverged";
  }
  auto nbrs = g.neighbors(v);
  std::vector<uint64_t> counts(g.num_vertices(), 0);
  uint64_t stopped = 0;
  for (Vid next : walkers) {
    if (next == kInvalidVid) {
      ++stopped;
    } else {
      ASSERT_TRUE(g.HasEdge(v, next));
      ++counts[next];
    }
  }
  std::vector<uint64_t> observed{stopped};
  std::vector<double> expected{s * kDraws};
  for (Vid u : nbrs) {
    observed.push_back(counts[u]);
    expected.push_back((1.0 - s) / static_cast<double>(nbrs.size()) * kDraws);
  }
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected, kSignificance))
      << "chi2=" << ChiSquareStatistic(observed, expected);
}

}  // namespace
}  // namespace fm
