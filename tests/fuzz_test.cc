// Randomized end-to-end property tests: random graphs (weights, self-loops,
// duplicates, dead ends, shuffled labels) x random walk specifications, checked
// against the engine's global invariants, plus randomized corrupt-CSR-header
// cases covering every field the loader's taint validation bounds-checks.
// Each parameter is an independent seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/graph/degree_sort.h"
#include "src/graph/edge_io.h"
#include "src/graph/graph_builder.h"
#include "src/util/rng.h"

namespace fm {
namespace {

struct FuzzCase {
  CsrGraph graph;
  WalkSpec spec;
  EngineOptions options;
};

FuzzCase MakeCase(uint64_t seed) {
  XorShiftRng rng(DeriveSeed(0xF022, seed));
  FuzzCase c;

  // Random graph: 50..2000 vertices, avg degree 1..12, random features.
  Vid n = 50 + static_cast<Vid>(rng.NextBounded(1950));
  uint64_t edges = n * (1 + rng.NextBounded(12));
  bool weighted = rng.NextBounded(2) == 0;
  GraphBuilder builder(n);
  for (uint64_t e = 0; e < edges; ++e) {
    Vid u = static_cast<Vid>(rng.NextBounded(n));
    Vid v = static_cast<Vid>(rng.NextBounded(n));  // self loops allowed
    float w = weighted ? 0.25f + static_cast<float>(rng.NextBounded(16)) : 1.0f;
    builder.AddEdge(u, v, w);
    if (rng.NextBounded(4) == 0) {
      builder.AddEdge(u, v, w);  // duplicates
    }
  }
  BuildOptions build;
  build.remove_self_loops = rng.NextBounded(2) == 0;
  build.remove_duplicate_edges = rng.NextBounded(2) == 0;
  c.graph = DegreeSort(builder.Build(build)).graph;

  // Random walk spec.
  c.spec.steps = 1 + static_cast<uint32_t>(rng.NextBounded(12));
  c.spec.num_walkers = 100 + rng.NextBounded(20000);
  c.spec.seed = seed * 77 + 5;
  c.spec.keep_paths = rng.NextBounded(2) == 0;
  c.spec.track_identity = c.spec.keep_paths || rng.NextBounded(2) == 0;
  c.spec.use_edge_weights = c.graph.weighted() && rng.NextBounded(2) == 0;
  if (rng.NextBounded(3) == 0) {
    c.spec.stop_probability = 0.1 + 0.3 * rng.NextDouble();
  }
  if (rng.NextBounded(3) == 0) {
    c.spec.algorithm = WalkAlgorithm::kNode2Vec;
    c.spec.node2vec = {0.25 + rng.NextDouble() * 3, 0.25 + rng.NextDouble() * 3};
    c.spec.use_edge_weights = false;  // unsupported combination
  }
  if (rng.NextBounded(4) == 0) {
    // Seeded starts from a random subset.
    uint32_t k = 1 + static_cast<uint32_t>(rng.NextBounded(5));
    for (uint32_t i = 0; i < k; ++i) {
      c.spec.start_vertices.push_back(
          static_cast<Vid>(rng.NextBounded(c.graph.num_vertices())));
    }
  }
  if (rng.NextBounded(3) == 0) {
    c.options.dram_budget_bytes = 1 << 18;  // force multiple episodes
  }
  return c;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, EngineInvariantsHold) {
  FuzzCase c = MakeCase(GetParam());
  FlashMobEngine engine(c.graph, c.options);
  WalkResult result = engine.Run(c.spec);

  // Step accounting: never more than walkers x steps; exact when nothing dies.
  uint64_t max_steps =
      static_cast<uint64_t>(c.spec.num_walkers) * c.spec.steps;
  EXPECT_LE(result.stats.total_steps, max_steps);
  if (c.spec.stop_probability == 0) {
    EXPECT_EQ(result.stats.total_steps, max_steps);
  }

  // Visit accounting: starts + live steps; steps whose walker terminated produce
  // no visit, so the equality is exact only without stochastic termination.
  uint64_t visits = 0;
  for (uint64_t v : result.visit_counts) {
    visits += v;
  }
  EXPECT_LE(visits, result.stats.total_steps + c.spec.num_walkers);
  if (c.spec.stop_probability == 0) {
    EXPECT_EQ(visits, result.stats.total_steps + c.spec.num_walkers);
  }

  // Per-VP accounting matches the total.
  uint64_t vp_sum = 0;
  for (uint64_t v : result.stats.vp_walker_steps) {
    vp_sum += v;
  }
  EXPECT_EQ(vp_sum, result.stats.total_steps);

  // Paths, when kept, are valid walks and complete.
  if (c.spec.keep_paths) {
    EXPECT_EQ(result.paths.num_walkers(), c.spec.num_walkers);
    EXPECT_TRUE(result.paths.ValidAgainst(c.graph));
    if (!c.spec.start_vertices.empty()) {
      for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
        ASSERT_NE(std::find(c.spec.start_vertices.begin(),
                            c.spec.start_vertices.end(), result.paths.At(w, 0)),
                  c.spec.start_vertices.end());
      }
    }
  }

  // Determinism: the same case reruns identically.
  FlashMobEngine engine2(c.graph, c.options);
  WalkResult result2 = engine2.Run(c.spec);
  EXPECT_EQ(result.visit_counts, result2.visit_counts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(0, 24));

// --- corrupt CSR header fuzzing ----------------------------------------------
// One randomized mutation per seed, each targeting a header field the loader
// treats as untrusted (magic, num_vertices, num_edges) or the payload length
// those counts are validated against (truncation / trailing garbage). Every
// mutation is constructed to be invalid by design — the header counts no
// longer match the file size — so both the copying and the mmap loader must
// reject with a clean error, never crash or over-allocate.

std::vector<uint8_t> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class CorruptHeaderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptHeaderFuzzTest, HostileHeadersAreRejectedCleanly) {
  const uint64_t seed = GetParam();
  XorShiftRng rng(DeriveSeed(0xC5A, seed));

  // A small random graph, weighted half the time so both payload layouts
  // (edges only / edges + weights) get corrupted.
  Vid n = 20 + static_cast<Vid>(rng.NextBounded(200));
  bool weighted = rng.NextBounded(2) == 0;
  GraphBuilder builder(n);
  for (uint64_t e = 0; e < n * 4ull; ++e) {
    builder.AddEdge(static_cast<Vid>(rng.NextBounded(n)),
                    static_cast<Vid>(rng.NextBounded(n)),
                    weighted ? 1.0f + static_cast<float>(rng.NextBounded(8))
                             : 1.0f);
  }
  CsrGraph graph = builder.Build({});
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("fm_fuzz_csr_" + std::to_string(seed) + ".csr"))
          .string();
  SaveCsrBinary(graph, path);

  std::vector<uint8_t> bytes = ReadAllBytes(path);
  ASSERT_GE(bytes.size(), 24u);
  auto load64 = [&](size_t off) {
    uint64_t v;
    std::memcpy(&v, bytes.data() + off, sizeof(v));
    return v;
  };
  auto store64 = [&](size_t off, uint64_t v) {
    std::memcpy(bytes.data() + off, &v, sizeof(v));
  };

  constexpr uint64_t kMagic = 0x464D435352303031ULL;          // FMCSR001
  constexpr uint64_t kWeightedMagic = 0x464D435352303032ULL;  // FMCSR002
  switch (seed % 5) {
    case 0: {  // random non-CSR magic
      uint64_t magic = load64(0) ^ (1 + rng.NextBounded((1ull << 32) - 1));
      while (magic == kMagic || magic == kWeightedMagic) {
        ++magic;
      }
      store64(0, magic);
      break;
    }
    case 1:  // vertex count no longer matches the payload (or blows Vid range)
      store64(8, load64(8) + 1 + rng.NextBounded(1ull << 20));
      break;
    case 2:  // edge count no longer matches the payload
      store64(16, load64(16) + 1 + rng.NextBounded(1ull << 20));
      break;
    case 3:  // truncation: counts now claim more payload than exists
      bytes.resize(bytes.size() - (1 + rng.NextBounded(16)));
      break;
    default:  // trailing garbage: payload larger than the counts account for
      for (uint64_t k = 0, end = 1 + rng.NextBounded(16); k < end; ++k) {
        bytes.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
      }
      break;
  }
  WriteAllBytes(path, bytes);

  EXPECT_THROW(LoadCsrBinary(path), std::runtime_error) << "seed " << seed;
  EXPECT_THROW(LoadCsrBinaryMapped(path), std::runtime_error)
      << "seed " << seed;
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptHeaderFuzzTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace fm
