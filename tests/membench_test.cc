#include "src/mem/membench.h"

#include <gtest/gtest.h>

namespace fm {
namespace {

// Wall-clock microbenchmarks on a shared CI box are noisy; these tests assert only
// robust orderings with generous slack, not absolute values.

MemBenchConfig FastConfig() {
  MemBenchConfig config;
  config.min_total_accesses = 1 << 19;
  return config;
}

TEST(MemBenchTest, AllLatenciesPositive) {
  for (int p = 0; p < 3; ++p) {
    double ns = MeasureLoadLatencyNs(static_cast<AccessPattern>(p), 64 * 1024,
                                     FastConfig());
    EXPECT_GT(ns, 0.0) << "pattern " << p;
    EXPECT_LT(ns, 10000.0) << "pattern " << p;
  }
}

TEST(MemBenchTest, PointerChaseSlowerThanSequentialAtDram) {
  uint64_t ws = 128ull * 1024 * 1024;  // far beyond any cache
  double seq =
      MeasureLoadLatencyNs(AccessPattern::kSequential, ws, FastConfig());
  double chase =
      MeasureLoadLatencyNs(AccessPattern::kPointerChase, ws, FastConfig());
  // Paper's gap is ~150x; any healthy machine shows at least 4x.
  EXPECT_GT(chase, seq * 4);
}

TEST(MemBenchTest, PointerChaseDegradesWithWorkingSet) {
  double small =
      MeasureLoadLatencyNs(AccessPattern::kPointerChase, 16 * 1024, FastConfig());
  double large = MeasureLoadLatencyNs(AccessPattern::kPointerChase,
                                      256ull * 1024 * 1024, FastConfig());
  EXPECT_GT(large, small * 2);
}

TEST(MemBenchTest, FullTableHasConsistentShape) {
  CacheInfo info;  // paper geometry; working sets derive from it
  MemBenchConfig config = FastConfig();
  config.min_total_accesses = 1 << 18;
  MemLatencyTable table = MeasureMemLatencyTable(info, config);
  for (int l = 0; l < 4; ++l) {
    EXPECT_GT(table.working_set_bytes[l], 0u);
    for (int p = 0; p < 3; ++p) {
      EXPECT_GT(table.ns[p][l], 0.0);
    }
  }
  // Sequential streaming stays cheap even at DRAM (the FlashMob premise).
  EXPECT_LT(table.ns[0][3], table.ns[2][3]);
}

}  // namespace
}  // namespace fm
