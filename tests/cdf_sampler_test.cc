#include "src/sampling/cdf_sampler.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/sampling/alias_table.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace fm {
namespace {

TEST(CdfSamplerTest, RejectsInvalidWeights) {
  EXPECT_THROW(CdfSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(CdfSampler(std::vector<double>{0, 0}), std::invalid_argument);
  EXPECT_THROW(CdfSampler(std::vector<double>{-1, 2}), std::invalid_argument);
}

TEST(CdfSamplerTest, ProbabilitiesMatchWeights) {
  std::vector<double> weights{2, 3, 5};
  CdfSampler sampler(weights);
  EXPECT_NEAR(sampler.Probability(0), 0.2, 1e-12);
  EXPECT_NEAR(sampler.Probability(1), 0.3, 1e-12);
  EXPECT_NEAR(sampler.Probability(2), 0.5, 1e-12);
}

TEST(CdfSamplerTest, DistributionMatches) {
  std::vector<double> weights{1, 4, 2, 8, 1};
  CdfSampler sampler(weights);
  XorShiftRng rng(13);
  const uint64_t draws = 1 << 20;
  std::vector<uint64_t> observed(weights.size(), 0);
  for (uint64_t i = 0; i < draws; ++i) {
    ++observed[sampler.Sample(rng)];
  }
  std::vector<double> expected;
  for (double w : weights) {
    expected.push_back(w / 16.0 * draws);
  }
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

TEST(CdfSamplerTest, AgreesWithAliasTable) {
  // Same weights, both samplers, distributions must agree with each other.
  std::vector<double> weights{3, 1, 7, 2, 9, 5};
  CdfSampler cdf(weights);
  AliasTable alias(weights);
  for (uint32_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(cdf.Probability(i), alias.Probability(i), 1e-9);
  }
}

TEST(CdfSamplerTest, ZeroWeightNeverSampled) {
  CdfSampler sampler(std::vector<double>{1, 0, 1});
  XorShiftRng rng(3);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_NE(sampler.Sample(rng), 1u);
  }
}

}  // namespace
}  // namespace fm
