#include "src/graph/csr_graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/graph/graph_builder.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(CsrGraphTest, SmallGraphStructure) {
  CsrGraph g = SmallGraph();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(3), 1u);
  auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
  g.CheckValid();
}

TEST(CsrGraphTest, HasEdge) {
  CsrGraph g = SmallGraph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(3, 3));
  EXPECT_TRUE(g.AdjacencySorted());
}

TEST(CsrGraphTest, MaxDegreeAndBytes) {
  CsrGraph g = SmallGraph();
  EXPECT_EQ(g.MaxDegree(), 3u);
  EXPECT_EQ(g.CsrBytes(), 5 * sizeof(Eid) + 7 * sizeof(Vid));
}

TEST(CsrGraphTest, EmptyAndSingleVertex) {
  GraphBuilder b(1);
  CsrGraph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  g.CheckValid();
}

TEST(GraphBuilderTest, InfersVertexCount) {
  GraphBuilder b;
  b.AddEdge(5, 9);
  CsrGraph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(GraphBuilderTest, FixedCountRejectsOutOfRange) {
  GraphBuilder b(4);
  EXPECT_THROW(b.AddEdge(0, 4), std::invalid_argument);
  EXPECT_THROW(b.AddEdge(4, 0), std::invalid_argument);
  b.AddEdge(3, 0);  // in range is fine
}

TEST(GraphBuilderTest, UndirectedDoublesEdges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  CsrGraph g = b.Build({.undirected = true});
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
}

TEST(GraphBuilderTest, SelfLoopRemoval) {
  GraphBuilder b(3);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(2, 2);
  CsrGraph g = b.Build({.remove_self_loops = true});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, DuplicateRemoval) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  CsrGraph g = b.Build({.remove_duplicate_edges = true});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilderTest, DuplicatesKeptByDefault) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  CsrGraph g = b.Build();
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(GraphBuilderTest, ZeroDegreeCompaction) {
  // Vertices 1 and 3 are untouched; they must be compacted away.
  GraphBuilder b(5);
  b.AddEdge(0, 2);
  b.AddEdge(4, 0);
  std::vector<Vid> new_to_old;
  CsrGraph g = b.Build({.remove_zero_degree = true}, &new_to_old);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(new_to_old.size(), 3u);
  EXPECT_EQ(new_to_old[0], 0u);
  EXPECT_EQ(new_to_old[1], 2u);
  EXPECT_EQ(new_to_old[2], 4u);
  // Edge 0->2 becomes 0->1, edge 4->0 becomes 2->0.
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 0));
}

TEST(GraphBuilderTest, ZeroDegreeCompactionCountsSelfLoopRemoval) {
  // Vertex 1's only incident edge is a removed self loop => compacted away too.
  GraphBuilder b(3);
  b.AddEdge(1, 1);
  b.AddEdge(0, 2);
  CsrGraph g = b.Build({.remove_self_loops = true, .remove_zero_degree = true});
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(CsrGraphTest, CtorRejectsMismatchedSizes) {
  EXPECT_DEATH(CsrGraph({0, 2}, {1}), "mismatch");
}

}  // namespace
}  // namespace fm
