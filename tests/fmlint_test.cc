// Self-tests for the fmlint v2 rule engine: every rule is driven over the
// intentionally-violating fixtures in tests/fmlint_fixtures/ through the
// exact production path (Engine::Lint), and the suppression machinery
// (allow / disable-enable blocks, unused- and bad-suppression errors) is
// exercised end to end. The fixture directory itself is excluded from
// Engine::LintTree, so these snippets never pollute the repo lint gate.
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/json.h"
#include "tools/fmlint/lint.h"
#include "tools/fmlint/rules.h"

namespace {

using fmlint::BuildDefaultRules;
using fmlint::Diagnostic;
using fmlint::Engine;

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(FMLINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Lints one fixture under a pretend repo-relative path (so path-derived
// checks like include-guard and per-file exemptions behave as in the tree).
std::vector<Diagnostic> LintOne(const std::string& pretend_path,
                                const std::string& fixture) {
  Engine engine(BuildDefaultRules());
  return engine.Lint({{pretend_path, ReadFixture(fixture)}});
}

// (rule, line) pairs, for exact-match assertions against a whole run.
std::multiset<std::pair<std::string, size_t>> RuleLines(
    const std::vector<Diagnostic>& diags) {
  std::multiset<std::pair<std::string, size_t>> out;
  for (const Diagnostic& d : diags) {
    out.insert({d.rule, d.line});
  }
  return out;
}

using Expected = std::multiset<std::pair<std::string, size_t>>;

TEST(FmlintRules, CatalogHasElevenUniquelyNamedRules) {
  auto rules = BuildDefaultRules();
  ASSERT_EQ(rules.size(), 11u);
  std::set<std::string> names;
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule->description().empty()) << rule->name();
    names.insert(std::string(rule->name()));
  }
  EXPECT_EQ(names.size(), 11u) << "duplicate rule names";
  const char* expected[] = {"include-guard",  "banned-rng",    "naked-new",
                            "reinterpret-arith", "visit-counts-mut",
                            "raw-clock",      "perf-syscall",  "raw-mutex",
                            "relaxed-order",  "manual-lock",   "include-cycle"};
  for (const char* name : expected) {
    EXPECT_EQ(names.count(name), 1u) << "missing rule: " << name;
  }
}

TEST(FmlintRules, IncludeGuard) {
  EXPECT_EQ(RuleLines(LintOne("src/fixture_bad.h", "include_guard_bad.h")),
            (Expected{{"include-guard", 1}}));
  EXPECT_TRUE(LintOne("src/fixture_good.h", "include_guard_good.h").empty());
}

TEST(FmlintRules, BannedRng) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "banned_rng_bad.cc")),
            (Expected{{"banned-rng", 3}, {"banned-rng", 4}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "banned_rng_good.cc").empty());
}

TEST(FmlintRules, NakedNew) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "naked_new_bad.cc")),
            (Expected{{"naked-new", 1}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "naked_new_good.cc").empty());
}

TEST(FmlintRules, ReinterpretArith) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "reinterpret_arith_bad.cc")),
            (Expected{{"reinterpret-arith", 3}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "reinterpret_arith_good.cc").empty());
}

TEST(FmlintRules, VisitCountsMut) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "visit_counts_mut_bad.cc")),
            (Expected{{"visit-counts-mut", 2}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "visit_counts_mut_good.cc").empty());
  // The rule is scoped: the same mutation inside src/core/ is allowed.
  Engine engine(BuildDefaultRules());
  EXPECT_TRUE(engine
                  .Lint({{"src/core/fx.cc",
                          ReadFixture("visit_counts_mut_bad.cc")}})
                  .empty());
}

TEST(FmlintRules, RawClock) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "raw_clock_bad.cc")),
            (Expected{{"raw-clock", 3}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "raw_clock_good.cc").empty());
}

TEST(FmlintRules, PerfSyscall) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "perf_syscall_bad.cc")),
            (Expected{{"perf-syscall", 3}, {"perf-syscall", 4}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "perf_syscall_good.cc").empty());
}

TEST(FmlintRules, RawMutex) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "raw_mutex_bad.cc")),
            (Expected{{"raw-mutex", 3}, {"raw-mutex", 4}, {"raw-mutex", 6}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "raw_mutex_good.cc").empty());
  // sync.h itself is the one place std primitives may live. (Other rules —
  // include-guard on the guardless snippet — still apply under that path.)
  Engine engine(BuildDefaultRules());
  for (const Diagnostic& d :
       engine.Lint({{"src/util/sync.h", ReadFixture("raw_mutex_bad.cc")}})) {
    EXPECT_NE(d.rule, "raw-mutex") << d.line;
  }
}

TEST(FmlintRules, RelaxedOrder) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "relaxed_order_bad.cc")),
            (Expected{{"relaxed-order", 3}}));
  // Same-line tag, tag one line above, and a wrapped multi-line comment
  // block are all accepted justification placements.
  EXPECT_TRUE(LintOne("tests/fx.cc", "relaxed_order_good.cc").empty());
}

TEST(FmlintRules, ManualLock) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "manual_lock_bad.cc")),
            (Expected{{"manual-lock", 4}, {"manual-lock", 5}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "manual_lock_good.cc").empty());
}

TEST(FmlintRules, IncludeCycleFiresOncePerCycle) {
  Engine engine(BuildDefaultRules());
  auto diags = engine.Lint({{"src/cycle_a.h", ReadFixture("cycle_a.h")},
                            {"src/cycle_b.h", ReadFixture("cycle_b.h")}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-cycle");
  EXPECT_NE(diags[0].message.find("src/cycle_a.h"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/cycle_b.h"), std::string::npos);
}

TEST(FmlintRules, IncludeCycleIgnoresAcyclicAndExternalEdges) {
  Engine engine(BuildDefaultRules());
  // acyclic_a.h also includes src/acyclic_b.h; b includes nothing. An edge
  // into a file outside the linted set (cycle_a.h's target) must not count.
  EXPECT_TRUE(
      engine.Lint({{"src/acyclic_a.h", ReadFixture("acyclic_a.h")},
                   {"src/acyclic_b.h", ReadFixture("acyclic_b.h")}})
          .empty());
}

TEST(FmlintSuppression, AllowSuppressesSameLineOnly) {
  EXPECT_TRUE(LintOne("tests/fx.cc", "suppress_allow.cc").empty());
}

TEST(FmlintSuppression, DisableEnableBlockSuppressesRange) {
  EXPECT_TRUE(LintOne("tests/fx.cc", "suppress_block.cc").empty());
}

TEST(FmlintSuppression, ViolationAfterEnableStillFires) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_block_partial.cc")),
            (Expected{{"raw-mutex", 5}}));
}

TEST(FmlintSuppression, UnusedAllowIsAnError) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_unused.cc")),
            (Expected{{"unused-suppression", 1}}));
}

TEST(FmlintSuppression, UnusedDisableBlockIsAnError) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_unused_block.cc")),
            (Expected{{"unused-suppression", 1}}));
}

TEST(FmlintSuppression, UnknownRuleNameIsAnError) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_unknown.cc")),
            (Expected{{"bad-suppression", 1}}));
}

TEST(FmlintSuppression, UnmatchedEnableIsAnError) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_unmatched_enable.cc")),
            (Expected{{"bad-suppression", 1}}));
}

TEST(FmlintEngine, StripPreservesLineStructureAndBlanksLiterals) {
  std::string stripped = fmlint::StripCommentsAndStrings(
      "int a; // std::mutex in a comment\n"
      "const char* s = \"std::mutex in a string\";\n"
      "/* block\nspanning */ int b;\n");
  auto lines = fmlint::SplitLines(stripped);
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("std::mutex"), std::string::npos) << line;
  }
  EXPECT_NE(lines[0].find("int a;"), std::string::npos);
  EXPECT_EQ(lines[2].find("block"), std::string::npos);  // comment blanked
  EXPECT_NE(lines[3].find("int b;"), std::string::npos);
}

TEST(FmlintEngine, JsonOutputParsesAndCarriesDiagnostics) {
  Engine engine(BuildDefaultRules());
  auto diags =
      engine.Lint({{"tests/fx.cc", ReadFixture("raw_mutex_bad.cc")}});
  ASSERT_EQ(diags.size(), 3u);
  std::string json = fmlint::DiagnosticsToJson(diags, engine.files_linted());
  fm::json::Value doc = fm::json::ParseJson(json);
  EXPECT_EQ(doc.Str("schema"), "fmlint-v2");
  EXPECT_EQ(doc.Num("files"), 1.0);
  EXPECT_EQ(doc.Num("violations"), 3.0);
  const auto& arr = doc.At("diagnostics").array;
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].Str("file"), "tests/fx.cc");
  EXPECT_EQ(arr[0].Str("rule"), "raw-mutex");
  EXPECT_EQ(arr[0].Num("line"), 3.0);
  EXPECT_FALSE(arr[0].Str("message").empty());
}

TEST(FmlintEngine, DiagnosticsSortedByFileThenLine) {
  Engine engine(BuildDefaultRules());
  auto diags =
      engine.Lint({{"tests/z.cc", ReadFixture("naked_new_bad.cc")},
                   {"tests/a.cc", ReadFixture("raw_mutex_bad.cc")}});
  ASSERT_EQ(diags.size(), 4u);
  EXPECT_EQ(diags[0].file, "tests/a.cc");
  EXPECT_EQ(diags[3].file, "tests/z.cc");
  for (size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(std::make_pair(diags[i - 1].file, diags[i - 1].line),
              std::make_pair(diags[i].file, diags[i].line));
  }
}

}  // namespace
