// Self-tests for the fmlint v4 rule engine: every rule — the per-line rules,
// the whole-program families (layer-dag, header-discipline, lock-order,
// hot-path-*), and the data-flow trio (rng-stream-discipline,
// untrusted-input-taint, relaxed-publication) — is driven over the
// intentionally-violating fixtures in tests/fmlint_fixtures/ through the
// exact production path (Engine::Lint), the suppression machinery (allow /
// disable-enable blocks, unused- and bad-suppression errors) is exercised end
// to end, --fix is checked for idempotency, the CFG / summary layer gets
// direct unit coverage, and the real repo tree is gated to zero findings via
// Engine::LintTree. The fixture directory itself is excluded from
// Engine::LintTree, so these snippets never pollute the repo lint gate.
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/json.h"
#include "tools/fmlint/dataflow.h"
#include "tools/fmlint/fix.h"
#include "tools/fmlint/lint.h"
#include "tools/fmlint/parse.h"
#include "tools/fmlint/rules.h"

namespace {

using fmlint::BuildDefaultRules;
using fmlint::Diagnostic;
using fmlint::Engine;

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(FMLINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Lints one fixture under a pretend repo-relative path (so path-derived
// checks like include-guard and per-file exemptions behave as in the tree).
std::vector<Diagnostic> LintOne(const std::string& pretend_path,
                                const std::string& fixture) {
  Engine engine(BuildDefaultRules());
  return engine.Lint({{pretend_path, ReadFixture(fixture)}});
}

// (rule, line) pairs, for exact-match assertions against a whole run.
std::multiset<std::pair<std::string, size_t>> RuleLines(
    const std::vector<Diagnostic>& diags) {
  std::multiset<std::pair<std::string, size_t>> out;
  for (const Diagnostic& d : diags) {
    out.insert({d.rule, d.line});
  }
  return out;
}

using Expected = std::multiset<std::pair<std::string, size_t>>;

TEST(FmlintRules, CatalogHasTwentyTwoUniquelyNamedRules) {
  auto rules = BuildDefaultRules();
  ASSERT_EQ(rules.size(), 22u);
  std::set<std::string> names;
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule->description().empty()) << rule->name();
    names.insert(std::string(rule->name()));
  }
  EXPECT_EQ(names.size(), 22u) << "duplicate rule names";
  const char* expected[] = {"include-guard",  "banned-rng",    "naked-new",
                            "reinterpret-arith", "visit-counts-mut",
                            "raw-clock",      "perf-syscall",  "raw-mutex",
                            "relaxed-order",  "manual-lock",   "include-cycle",
                            "layer-dag",      "header-discipline",
                            "lock-order",     "hot-path-alloc",
                            "hot-path-lock",  "hot-path-io",   "hot-path-div",
                            "telemetry-hot-path",
                            "rng-stream-discipline",
                            "untrusted-input-taint",
                            "relaxed-publication"};
  for (const char* name : expected) {
    EXPECT_EQ(names.count(name), 1u) << "missing rule: " << name;
  }
}

TEST(FmlintRules, IncludeGuard) {
  EXPECT_EQ(RuleLines(LintOne("src/fixture_bad.h", "include_guard_bad.h")),
            (Expected{{"include-guard", 1}}));
  EXPECT_TRUE(LintOne("src/fixture_good.h", "include_guard_good.h").empty());
}

TEST(FmlintRules, BannedRng) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "banned_rng_bad.cc")),
            (Expected{{"banned-rng", 3}, {"banned-rng", 4}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "banned_rng_good.cc").empty());
}

TEST(FmlintRules, NakedNew) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "naked_new_bad.cc")),
            (Expected{{"naked-new", 1}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "naked_new_good.cc").empty());
}

TEST(FmlintRules, ReinterpretArith) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "reinterpret_arith_bad.cc")),
            (Expected{{"reinterpret-arith", 3}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "reinterpret_arith_good.cc").empty());
}

TEST(FmlintRules, VisitCountsMut) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "visit_counts_mut_bad.cc")),
            (Expected{{"visit-counts-mut", 2}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "visit_counts_mut_good.cc").empty());
  // The rule is scoped: the same mutation inside src/core/ is allowed.
  Engine engine(BuildDefaultRules());
  EXPECT_TRUE(engine
                  .Lint({{"src/core/fx.cc",
                          ReadFixture("visit_counts_mut_bad.cc")}})
                  .empty());
}

TEST(FmlintRules, RawClock) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "raw_clock_bad.cc")),
            (Expected{{"raw-clock", 3}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "raw_clock_good.cc").empty());
}

TEST(FmlintRules, PerfSyscall) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "perf_syscall_bad.cc")),
            (Expected{{"perf-syscall", 3}, {"perf-syscall", 4}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "perf_syscall_good.cc").empty());
}

TEST(FmlintRules, RawMutex) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "raw_mutex_bad.cc")),
            (Expected{{"raw-mutex", 3}, {"raw-mutex", 4}, {"raw-mutex", 6}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "raw_mutex_good.cc").empty());
  // sync.h itself is the one place std primitives may live. (Other rules —
  // include-guard on the guardless snippet — still apply under that path.)
  Engine engine(BuildDefaultRules());
  for (const Diagnostic& d :
       engine.Lint({{"src/util/sync.h", ReadFixture("raw_mutex_bad.cc")}})) {
    EXPECT_NE(d.rule, "raw-mutex") << d.line;
  }
}

TEST(FmlintRules, RelaxedOrder) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "relaxed_order_bad.cc")),
            (Expected{{"relaxed-order", 3}}));
  // Same-line tag, tag one line above, and a wrapped multi-line comment
  // block are all accepted justification placements.
  EXPECT_TRUE(LintOne("tests/fx.cc", "relaxed_order_good.cc").empty());
}

TEST(FmlintRules, ManualLock) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "manual_lock_bad.cc")),
            (Expected{{"manual-lock", 4}, {"manual-lock", 5}}));
  EXPECT_TRUE(LintOne("tests/fx.cc", "manual_lock_good.cc").empty());
}

TEST(FmlintRules, IncludeCycleFiresOncePerCycle) {
  Engine engine(BuildDefaultRules());
  auto diags = engine.Lint({{"src/cycle_a.h", ReadFixture("cycle_a.h")},
                            {"src/cycle_b.h", ReadFixture("cycle_b.h")}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-cycle");
  EXPECT_NE(diags[0].message.find("src/cycle_a.h"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/cycle_b.h"), std::string::npos);
}

TEST(FmlintRules, IncludeCycleIgnoresAcyclicAndExternalEdges) {
  Engine engine(BuildDefaultRules());
  // acyclic_a.h also includes src/acyclic_b.h; b includes nothing. An edge
  // into a file outside the linted set (cycle_a.h's target) must not count.
  EXPECT_TRUE(
      engine.Lint({{"src/acyclic_a.h", ReadFixture("acyclic_a.h")},
                   {"src/acyclic_b.h", ReadFixture("acyclic_b.h")}})
          .empty());
}

TEST(FmlintSuppression, AllowSuppressesSameLineOnly) {
  EXPECT_TRUE(LintOne("tests/fx.cc", "suppress_allow.cc").empty());
}

TEST(FmlintSuppression, DisableEnableBlockSuppressesRange) {
  EXPECT_TRUE(LintOne("tests/fx.cc", "suppress_block.cc").empty());
}

TEST(FmlintSuppression, ViolationAfterEnableStillFires) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_block_partial.cc")),
            (Expected{{"raw-mutex", 5}}));
}

TEST(FmlintSuppression, UnusedAllowIsAnError) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_unused.cc")),
            (Expected{{"unused-suppression", 1}}));
}

TEST(FmlintSuppression, UnusedDisableBlockIsAnError) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_unused_block.cc")),
            (Expected{{"unused-suppression", 1}}));
}

TEST(FmlintSuppression, UnknownRuleNameIsAnError) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_unknown.cc")),
            (Expected{{"bad-suppression", 1}}));
}

TEST(FmlintSuppression, UnmatchedEnableIsAnError) {
  EXPECT_EQ(RuleLines(LintOne("tests/fx.cc", "suppress_unmatched_enable.cc")),
            (Expected{{"bad-suppression", 1}}));
}

TEST(FmlintEngine, StripPreservesLineStructureAndBlanksLiterals) {
  std::string stripped = fmlint::StripCommentsAndStrings(
      "int a; // std::mutex in a comment\n"
      "const char* s = \"std::mutex in a string\";\n"
      "/* block\nspanning */ int b;\n");
  auto lines = fmlint::SplitLines(stripped);
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("std::mutex"), std::string::npos) << line;
  }
  EXPECT_NE(lines[0].find("int a;"), std::string::npos);
  EXPECT_EQ(lines[2].find("block"), std::string::npos);  // comment blanked
  EXPECT_NE(lines[3].find("int b;"), std::string::npos);
}

TEST(FmlintEngine, JsonOutputParsesAndCarriesDiagnostics) {
  Engine engine(BuildDefaultRules());
  auto diags =
      engine.Lint({{"tests/fx.cc", ReadFixture("raw_mutex_bad.cc")}});
  ASSERT_EQ(diags.size(), 3u);
  std::string json = fmlint::DiagnosticsToJson(diags, engine.files_linted());
  fm::json::Value doc = fm::json::ParseJson(json);
  EXPECT_EQ(doc.Str("schema"), "fmlint-v2");
  EXPECT_EQ(doc.Num("files"), 1.0);
  EXPECT_EQ(doc.Num("violations"), 3.0);
  const auto& arr = doc.At("diagnostics").array;
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].Str("file"), "tests/fx.cc");
  EXPECT_EQ(arr[0].Str("rule"), "raw-mutex");
  EXPECT_EQ(arr[0].Num("line"), 3.0);
  EXPECT_FALSE(arr[0].Str("message").empty());
}

// --- layer-dag ---------------------------------------------------------------

TEST(FmlintLayers, LowerLayerMayNotIncludeUpper) {
  EXPECT_EQ(RuleLines(LintOne("src/util/fx.cc", "layer_dag_bad.cc")),
            (Expected{{"layer-dag", 1}}));
}

TEST(FmlintLayers, SameRankEdgeNeedsExplicitAllowance) {
  // graph -> sampling is not in the sibling allowlist (sampling -> graph is).
  EXPECT_EQ(RuleLines(LintOne("src/graph/fx.cc", "layer_dag_same_rank_bad.cc")),
            (Expected{{"layer-dag", 1}}));
  EXPECT_TRUE(
      LintOne("src/sampling/fx.cc", "layer_dag_same_rank_bad.cc").empty());
}

TEST(FmlintLayers, ManifestConformingIncludesAreClean) {
  EXPECT_TRUE(LintOne("src/core/fx.cc", "layer_dag_good.cc").empty());
}

// --- header-discipline -------------------------------------------------------

TEST(FmlintLayers, HeaderDisciplineFlagsCcInternalAndUmbrella) {
  // The umbrella include from inside src/ is also a layer violation (fm.h
  // ranks above every src module), so both rules fire on line 2.
  EXPECT_EQ(RuleLines(LintOne("src/apps/fx.cc", "header_discipline_bad.cc")),
            (Expected{{"header-discipline", 1},
                      {"header-discipline", 2},
                      {"layer-dag", 2},
                      {"header-discipline", 3}}));
}

TEST(FmlintLayers, OwnInternalHeaderAndExternalUmbrellaAreClean) {
  EXPECT_TRUE(LintOne("src/graph/fx.cc", "header_discipline_good.cc").empty());
  EXPECT_TRUE(LintOne("tests/fx.cc", "umbrella_ok.cc").empty());
}

// --- lock-order --------------------------------------------------------------

TEST(FmlintLockOrder, DirectNestingCycleIsReportedOnce) {
  auto diags = LintOne("src/util/fxlock.h", "lock_cycle_direct.h");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "lock-order");
  EXPECT_EQ(diags[0].line, 9u);
  EXPECT_NE(diags[0].message.find("Exchange::mu_in_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("Exchange::mu_out_"), std::string::npos);
  EXPECT_NE(diags[0].message.find("cycle"), std::string::npos);
}

TEST(FmlintLockOrder, CycleThroughCallGraphIsReported) {
  auto diags = LintOne("src/util/fxlock2.h", "lock_cycle_call.h");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "lock-order");
  // The front -> rear edge comes from Produce calling Drain under mu_front_.
  EXPECT_NE(diags[0].message.find("Queue::Drain"), std::string::npos);
  EXPECT_NE(diags[0].message.find("Queue::mu_rear_"), std::string::npos);
}

TEST(FmlintLockOrder, ConsistentOrderIsClean) {
  EXPECT_TRUE(LintOne("src/util/fxlock3.h", "lock_order_good.h").empty());
}

TEST(FmlintLockOrder, CycleFindingIsSuppressible) {
  // Whole-program diagnostics run through the same suppression machinery as
  // per-line ones (and the allow must count as used).
  EXPECT_TRUE(LintOne("src/util/fxlock4.h", "suppress_lock_order.h").empty());
}

// --- hot-path family ---------------------------------------------------------

TEST(FmlintHotPath, AllocInHotFunction) {
  EXPECT_EQ(RuleLines(LintOne("src/core/fxhot.cc", "hot_path_alloc_bad.cc")),
            (Expected{{"hot-path-alloc", 5}, {"hot-path-alloc", 7}}));
  EXPECT_TRUE(LintOne("src/core/fxhot.cc", "hot_path_alloc_good.cc").empty());
}

TEST(FmlintHotPath, LockInHotFunction) {
  EXPECT_EQ(RuleLines(LintOne("src/core/fxhot.cc", "hot_path_lock_bad.cc")),
            (Expected{{"hot-path-lock", 7}}));
  EXPECT_TRUE(LintOne("src/core/fxhot.cc", "hot_path_lock_good.cc").empty());
}

TEST(FmlintHotPath, IoReachedTransitivelyCarriesTheChain) {
  auto diags = LintOne("src/core/fxhot.cc", "hot_path_io_bad.cc");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "hot-path-io");
  EXPECT_EQ(diags[0].line, 5u);
  EXPECT_NE(diags[0].message.find("Kernel -> Report"), std::string::npos);
  EXPECT_TRUE(LintOne("src/core/fxhot.cc", "hot_path_io_good.cc").empty());
}

TEST(FmlintHotPath, DivisionNeedsJustification) {
  EXPECT_EQ(RuleLines(LintOne("src/core/fxhot.cc", "hot_path_div_bad.cc")),
            (Expected{{"hot-path-div", 3}}));
  // `div:` on the same line and in the comment block above both justify.
  EXPECT_TRUE(LintOne("src/core/fxhot.cc", "hot_path_div_good.cc").empty());
}

TEST(FmlintHotPath, TelemetryUpdatesMustUseShardStores) {
  EXPECT_EQ(
      RuleLines(LintOne("src/core/fxhot.cc", "telemetry_hot_path_bad.cc")),
      (Expected{{"telemetry-hot-path", 9}}));
  EXPECT_TRUE(
      LintOne("src/core/fxhot.cc", "telemetry_hot_path_good.cc").empty());
}

TEST(FmlintHotPath, AmbiguousCalleesDoNotPropagateHotness) {
  // With a unique definition of Emit the closure reaches its printf; adding a
  // second Emit makes the simple-name call unresolvable, and the analysis
  // deliberately under-approximates instead of guessing.
  Engine unique(BuildDefaultRules());
  auto diags =
      unique.Lint({{"src/core/fxa.cc", ReadFixture("ambiguous_hot_a.cc")},
                   {"src/core/fxb.cc", ReadFixture("ambiguous_hot_b.cc")}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "hot-path-io");
  EXPECT_EQ(diags[0].file, "src/core/fxb.cc");

  Engine ambiguous(BuildDefaultRules());
  EXPECT_TRUE(
      ambiguous
          .Lint({{"src/core/fxa.cc", ReadFixture("ambiguous_hot_a.cc")},
                 {"src/core/fxb.cc", ReadFixture("ambiguous_hot_b.cc")},
                 {"src/core/fxc.cc", ReadFixture("ambiguous_hot_c.cc")}})
          .empty());
}

// --- parser front end --------------------------------------------------------

TEST(FmlintParse, TokenizerMergesQualifiersAndSkipsPreprocessor) {
  fmlint::SourceFile f = fmlint::PrepareSource(
      "src/fx.cc",
      "#define WIDTH 64\n"
      "int n = fm::Count(tracer);\n"
      "n /= 2;\n");
  auto toks = fmlint::Tokenize(f);
  std::vector<std::string> texts;
  for (const auto& t : toks) {
    texts.push_back(t.text);
  }
  // The #define line contributes nothing; :: and /= arrive as single tokens.
  EXPECT_EQ(texts, (std::vector<std::string>{
                       "int", "n", "=", "fm", "::", "Count", "(", "tracer",
                       ")", ";", "n", "/=", "2", ";"}));
  EXPECT_EQ(toks[0].line, 2u);
}

TEST(FmlintParse, QualifiesInClassAndOutOfLineDefinitionsAlike) {
  fmlint::SourceFile f = fmlint::PrepareSource(
      "src/fx.cc",
      "namespace fm {\n"
      "class Tracer {\n"
      " public:\n"
      "  void Flush() { count_ = 0; }\n"
      "};\n"
      "void Tracer::Emit() { Flush(); }\n"
      "}  // namespace fm\n");
  auto fns = fmlint::ParseFunctions(f);
  ASSERT_EQ(fns.size(), 2u);
  // Namespace names are deliberately dropped so both spellings agree.
  EXPECT_EQ(fns[0].qualified, "Tracer::Flush");
  EXPECT_EQ(fns[1].qualified, "Tracer::Emit");
  ASSERT_EQ(fns[1].calls.size(), 1u);
  EXPECT_EQ(fns[1].calls[0].name, "Flush");
}

TEST(FmlintParse, RaiiLockScopeIsModelled) {
  fmlint::SourceFile f = fmlint::PrepareSource(
      "src/fx.cc",
      "void Work() {\n"
      "  {\n"
      "    MutexLock guard(mu);\n"
      "    Inner();\n"
      "  }\n"
      "  Outer();\n"
      "}\n");
  auto fns = fmlint::ParseFunctions(f);
  ASSERT_EQ(fns.size(), 1u);
  ASSERT_EQ(fns[0].calls.size(), 2u);
  EXPECT_EQ(fns[0].calls[0].name, "Inner");
  EXPECT_EQ(fns[0].calls[0].held_locks, std::vector<std::string>{"mu"});
  EXPECT_EQ(fns[0].calls[1].name, "Outer");
  EXPECT_TRUE(fns[0].calls[1].held_locks.empty());
}

TEST(FmlintParse, HotMarkerOnPrototypeMergesOntoDefinition) {
  // The marker sits on the declaration (header style); the definition is
  // plain. Linting both as one set must still treat Step as hot.
  Engine engine(BuildDefaultRules());
  auto diags = engine.Lint(
      {{"src/core/fxh.h",
        "#ifndef SRC_CORE_FXH_H_\n#define SRC_CORE_FXH_H_\n"
        "namespace fm {\nFM_HOT_PATH int Step(int x);\n}  // namespace fm\n"
        "#endif  // SRC_CORE_FXH_H_\n"},
       {"src/core/fxh.cc",
        "namespace fm {\nint Step(int x) {\n  return x % 5;\n}\n"
        "}  // namespace fm\n"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "hot-path-div");
  EXPECT_EQ(diags[0].file, "src/core/fxh.cc");
}

TEST(FmlintParse, NormalizeLockName) {
  EXPECT_EQ(fmlint::NormalizeLockName("mu_", "Widget"), "Widget::mu_");
  EXPECT_EQ(fmlint::NormalizeLockName("this->mu_", "Widget"), "Widget::mu_");
  EXPECT_EQ(fmlint::NormalizeLockName("pool.mutex_", "Widget"),
            "Widget::mutex_");
  EXPECT_EQ(fmlint::NormalizeLockName("g_log_mutex", "Widget"), "g_log_mutex");
  EXPECT_EQ(fmlint::NormalizeLockName("Tracer::mutex_", "Widget"),
            "Tracer::mutex_");
}

// --- fix ---------------------------------------------------------------------

TEST(FmlintFix, RawMutexFixConvergesAndIsIdempotent) {
  std::string text = ReadFixture("raw_mutex_bad.cc");
  EXPECT_GT(fmlint::ApplyFixesToText("tests/fx.cc", &text), 0u);
  Engine engine(BuildDefaultRules());
  for (const auto& d : engine.Lint({{"tests/fx.cc", text}})) {
    EXPECT_NE(d.rule, "raw-mutex") << d.line << ": " << d.message;
  }
  std::string again = text;
  EXPECT_EQ(fmlint::ApplyFixesToText("tests/fx.cc", &again), 0u);
  EXPECT_EQ(again, text);
}

TEST(FmlintFix, RawClockFixConvergesAndIsIdempotent) {
  std::string text = ReadFixture("raw_clock_bad.cc");
  EXPECT_GT(fmlint::ApplyFixesToText("tests/fx.cc", &text), 0u);
  Engine engine(BuildDefaultRules());
  for (const auto& d : engine.Lint({{"tests/fx.cc", text}})) {
    EXPECT_NE(d.rule, "raw-clock") << d.line << ": " << d.message;
  }
  std::string again = text;
  EXPECT_EQ(fmlint::ApplyFixesToText("tests/fx.cc", &again), 0u);
}

TEST(FmlintFix, IncludeGuardRenameConvergesAndIsIdempotent) {
  std::string text = ReadFixture("include_guard_bad.h");
  EXPECT_GT(fmlint::ApplyFixesToText("src/fixture_bad.h", &text), 0u);
  Engine engine(BuildDefaultRules());
  for (const auto& d : engine.Lint({{"src/fixture_bad.h", text}})) {
    EXPECT_NE(d.rule, "include-guard") << d.line << ": " << d.message;
  }
  std::string again = text;
  EXPECT_EQ(fmlint::ApplyFixesToText("src/fixture_bad.h", &again), 0u);
}

TEST(FmlintFix, TaintJustificationStubsInsertAndConverge) {
  Engine engine(BuildDefaultRules());
  std::string text = ReadFixture("taint_bad.cc");
  auto diags = engine.Lint({{"src/graph/fxt.cc", text}});
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(
      fmlint::InsertTaintJustifications(diags, "src/graph/fxt.cc", &text), 3u);
  // The stubs carry the `taint:` tag, so the findings are now justified (a
  // human is expected to replace the FIXME text with the real argument).
  Engine again(BuildDefaultRules());
  auto rediags = again.Lint({{"src/graph/fxt.cc", text}});
  for (const auto& d : rediags) {
    EXPECT_NE(d.rule, "untrusted-input-taint") << d.line << ": " << d.message;
  }
  // With no taint findings left, a second insertion pass is a no-op.
  std::string before = text;
  EXPECT_EQ(
      fmlint::InsertTaintJustifications(rediags, "src/graph/fxt.cc", &text),
      0u);
  EXPECT_EQ(text, before);
}

// --- data-flow layer: CFGs and summaries -------------------------------------

TEST(FmlintDataflow, CfgLoopHasCondBlockAndBackEdge) {
  fmlint::SourceFile f = fmlint::PrepareSource(
      "src/fx.cc",
      "int Sum(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    s += i;\n"
      "  }\n"
      "  return s;\n"
      "}\n");
  auto fns = fmlint::ParseFunctions(f);
  ASSERT_EQ(fns.size(), 1u);
  fmlint::Cfg cfg = fmlint::BuildCfg(fns[0]);
  size_t header = cfg.blocks.size();
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    if (cfg.blocks[i].cond == fmlint::BasicBlock::Cond::kLoop) {
      header = i;
    }
  }
  ASSERT_LT(header, cfg.blocks.size()) << "no loop-condition block";
  EXPECT_EQ(cfg.blocks[header].cond_line, 3u);
  // The loop body must edge back to the condition block.
  bool back_edge = false;
  for (size_t i = header; i < cfg.blocks.size(); ++i) {
    for (size_t s : cfg.blocks[i].succs) {
      back_edge = back_edge || (s == header && i != header);
    }
  }
  EXPECT_TRUE(back_edge);
}

TEST(FmlintDataflow, CfgEarlyReturnEdgesToExit) {
  fmlint::SourceFile f = fmlint::PrepareSource(
      "src/fx.cc",
      "int Pick(int x) {\n"
      "  if (x > 0) {\n"
      "    return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  auto fns = fmlint::ParseFunctions(f);
  ASSERT_EQ(fns.size(), 1u);
  fmlint::Cfg cfg = fmlint::BuildCfg(fns[0]);
  size_t return_blocks = 0;
  for (const fmlint::BasicBlock& b : cfg.blocks) {
    bool returns = false;
    for (const fmlint::Statement& s : b.stmts) {
      returns = returns || s.is_return;
    }
    if (!returns) {
      continue;
    }
    ++return_blocks;
    EXPECT_EQ(b.succs, std::vector<size_t>{cfg.exit});
  }
  EXPECT_EQ(return_blocks, 2u);
}

TEST(FmlintDataflow, CfgSwitchFansOutPerCase) {
  fmlint::SourceFile f = fmlint::PrepareSource(
      "src/fx.cc",
      "int Tag(int k) {\n"
      "  switch (k) {\n"
      "    case 0:\n"
      "      return 10;\n"
      "    case 1:\n"
      "      return 11;\n"
      "    default:\n"
      "      return 12;\n"
      "  }\n"
      "}\n");
  auto fns = fmlint::ParseFunctions(f);
  ASSERT_EQ(fns.size(), 1u);
  fmlint::Cfg cfg = fmlint::BuildCfg(fns[0]);
  size_t head = cfg.blocks.size();
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    if (cfg.blocks[i].cond == fmlint::BasicBlock::Cond::kSwitch) {
      head = i;
    }
  }
  ASSERT_LT(head, cfg.blocks.size()) << "no switch block";
  // Two cases, a default, and the fall-past edge.
  EXPECT_GE(cfg.blocks[head].succs.size(), 3u);
}

TEST(FmlintDataflow, CrossTuSummaryCarriesTaint) {
  fmlint::WholeProgram wp(1);
  wp.AddFile(
      fmlint::PrepareSource("src/graph/fxa.cc", ReadFixture("taint_helper_a.cc")));
  wp.AddFile(
      fmlint::PrepareSource("src/graph/fxb.cc", ReadFixture("taint_helper_b.cc")));
  wp.EnsureAnalyzed();
  fmlint::DataFlow df(wp);
  const auto& fns = wp.functions();
  bool checked = false;
  for (size_t i = 0; i < fns.size(); ++i) {
    if (fns[i].qualified.find("ReadCount") == std::string::npos) {
      continue;
    }
    // ReadCount returns LoadScalar(...) — the summary must expose the taint
    // so callers in other TUs inherit it.
    EXPECT_NE(df.summary(i).returns & fmlint::kProvUntrusted, 0u);
    checked = true;
  }
  EXPECT_TRUE(checked);
  wp.Release();
}

// --- data-flow rule family ---------------------------------------------------

TEST(FmlintDataflowRules, ThreadCountSeedIsThePlacementBug) {
  // The PR 3 determinism-bug shape: seeding with a pool-size-derived value
  // makes the walk depend on thread placement.
  EXPECT_EQ(RuleLines(LintOne("src/core/fxr.cc", "rng_stream_bad.cc")),
            (Expected{{"rng-stream-discipline", 11}}));
}

TEST(FmlintDataflowRules, SlotDerivedSeedFires) {
  EXPECT_EQ(RuleLines(LintOne("src/core/fxr.cc", "rng_stream_slot_bad.cc")),
            (Expected{{"rng-stream-discipline", 11}}));
}

TEST(FmlintDataflowRules, WalkerSeedThroughHelperIsClean) {
  // WalkerSeed provenance survives the Remix passthrough via its summary.
  EXPECT_TRUE(LintOne("src/core/fxr.cc", "rng_stream_good.cc").empty());
}

TEST(FmlintDataflowRules, TaintedAllocLoopBoundAndIndexFire) {
  EXPECT_EQ(RuleLines(LintOne("src/graph/fxt.cc", "taint_bad.cc")),
            (Expected{{"untrusted-input-taint", 10},
                      {"untrusted-input-taint", 11},
                      {"untrusted-input-taint", 14}}));
}

TEST(FmlintDataflowRules, BoundCheckAndTaintCommentSanitize) {
  EXPECT_TRUE(LintOne("src/graph/fxt.cc", "taint_good.cc").empty());
}

TEST(FmlintDataflowRules, CrossTuTaintFlowsThroughSummaries) {
  Engine engine(BuildDefaultRules());
  auto diags =
      engine.Lint({{"src/graph/fxa.cc", ReadFixture("taint_helper_a.cc")},
                   {"src/graph/fxb.cc", ReadFixture("taint_helper_b.cc")}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "untrusted-input-taint");
  EXPECT_EQ(diags[0].file, "src/graph/fxb.cc");
  EXPECT_EQ(diags[0].line, 6u);
}

TEST(FmlintDataflowRules, AmbiguousCalleeUnderApproximates) {
  // A second ReadCount definition makes the simple-name call unresolvable;
  // the analysis drops the provenance instead of guessing, so no finding.
  Engine engine(BuildDefaultRules());
  EXPECT_TRUE(
      engine
          .Lint({{"src/graph/fxa.cc", ReadFixture("taint_helper_a.cc")},
                 {"src/graph/fxb.cc", ReadFixture("taint_helper_b.cc")},
                 {"src/graph/fxc.cc", ReadFixture("taint_helper_c.cc")}})
          .empty());
}

TEST(FmlintDataflowRules, PointerPublishPairingAndKeywordFire) {
  // Line 16: pointer-publishing relaxed store; line 21: the load that pairs
  // with it; line 27: a store whose `relaxed:` comment states no discipline.
  EXPECT_EQ(RuleLines(LintOne("src/util/fxp.cc", "relaxed_pub_bad.cc")),
            (Expected{{"relaxed-publication", 16},
                      {"relaxed-publication", 21},
                      {"relaxed-publication", 27}}));
}

TEST(FmlintDataflowRules, DisciplinedRelaxedStoresAreClean) {
  EXPECT_TRUE(LintOne("src/util/fxp.cc", "relaxed_pub_good.cc").empty());
}

// --- raw string literals -----------------------------------------------------

TEST(FmlintEngine, RawStringLiteralsAreBlankedWithLineStructure) {
  std::string stripped = fmlint::StripCommentsAndStrings(
      "const char* d = R\"doc(line \"one\"\n"
      "std::mutex line two)doc\";\n"
      "int after = 1;\n");
  auto lines = fmlint::SplitLines(stripped);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(stripped.find("std::mutex"), std::string::npos);
  EXPECT_EQ(stripped.find("doc"), std::string::npos) << "delimiter leaked";
  EXPECT_EQ(stripped.find("one"), std::string::npos)
      << "inner quote ended the raw string early";
  EXPECT_NE(lines[2].find("int after = 1;"), std::string::npos);
}

TEST(FmlintEngine, RawStringContentsTripNoKeywordRules) {
  EXPECT_TRUE(LintOne("tests/fx.cc", "raw_string_good.cc").empty());
}

// --- timings and SARIF -------------------------------------------------------

TEST(FmlintEngine, JsonTimingsArePerRuleAndAdditive) {
  Engine engine(BuildDefaultRules());
  auto diags =
      engine.Lint({{"tests/fx.cc", ReadFixture("banned_rng_good.cc")}});
  ASSERT_EQ(engine.rule_timings().size(), 22u);
  std::string json = fmlint::DiagnosticsToJson(diags, engine.files_linted(),
                                               &engine.rule_timings());
  fm::json::Value doc = fm::json::ParseJson(json);
  EXPECT_EQ(doc.Str("schema"), "fmlint-v2");
  const fm::json::Value& timings = doc.At("timings");
  EXPECT_GE(timings.Num("total_ms"), 0.0);
  EXPECT_TRUE(timings.Has("rng-stream-discipline"));
  EXPECT_TRUE(timings.Has("include-guard"));
  // Omitting the pointer keeps the fmlint-v2 document shape unchanged.
  std::string legacy = fmlint::DiagnosticsToJson(diags, engine.files_linted());
  EXPECT_EQ(legacy.find("timings"), std::string::npos);
}

TEST(FmlintEngine, SarifCarriesRulesResultsAndClampsLines) {
  Engine engine(BuildDefaultRules());
  auto diags =
      engine.Lint({{"tests/fx.cc", ReadFixture("raw_mutex_bad.cc")}});
  ASSERT_EQ(diags.size(), 3u);
  diags.push_back({"tests/io.cc", 0, "io", "cannot read file", ""});
  std::string sarif = fmlint::DiagnosticsToSarif(diags, engine.rules());
  fm::json::Value doc = fm::json::ParseJson(sarif);
  EXPECT_EQ(doc.Str("version"), "2.1.0");
  const auto& run = doc.At("runs").array.at(0);
  const auto& driver = run.At("tool").At("driver");
  EXPECT_EQ(driver.Str("name"), "fmlint");
  EXPECT_EQ(driver.At("rules").array.size(), 22u);
  const auto& results = run.At("results").array;
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].Str("ruleId"), "raw-mutex");
  const auto& loc0 =
      results[0].At("locations").array.at(0).At("physicalLocation");
  EXPECT_EQ(loc0.At("artifactLocation").Str("uri"), "tests/fx.cc");
  EXPECT_EQ(loc0.At("region").Num("startLine"), 3.0);
  const auto& loc3 =
      results[3].At("locations").array.at(0).At("physicalLocation");
  EXPECT_EQ(loc3.At("region").Num("startLine"), 1.0) << "line 0 not clamped";
}

// --- whole-repo gate ---------------------------------------------------------

TEST(FmlintGate, RepoTreeIsCleanUnderAllFamilies) {
  // The production tree walk with every rule family enabled: zero findings
  // and (because unused suppressions are themselves findings) zero stale
  // fmlint: directives.
  Engine engine(BuildDefaultRules());
  for (const Diagnostic& d : engine.LintTree(FMLINT_REPO_ROOT)) {
    ADD_FAILURE() << d.file << ":" << d.line << " [" << d.rule << "] "
                  << d.message;
  }
  EXPECT_GT(engine.files_linted(), 100u) << "tree walk found too few files";
}

TEST(FmlintEngine, DiagnosticsSortedByFileThenLine) {
  Engine engine(BuildDefaultRules());
  auto diags =
      engine.Lint({{"tests/z.cc", ReadFixture("naked_new_bad.cc")},
                   {"tests/a.cc", ReadFixture("raw_mutex_bad.cc")}});
  ASSERT_EQ(diags.size(), 4u);
  EXPECT_EQ(diags[0].file, "tests/a.cc");
  EXPECT_EQ(diags[3].file, "tests/z.cc");
  for (size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(std::make_pair(diags[i - 1].file, diags[i - 1].line),
              std::make_pair(diags[i].file, diags[i].line));
  }
}

}  // namespace
