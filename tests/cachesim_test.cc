#include <gtest/gtest.h>

#include "src/cachesim/cache_level.h"
#include "src/cachesim/hierarchy.h"
#include "src/cachesim/latency_model.h"
#include "src/util/rng.h"

namespace fm {
namespace {

TEST(CacheLevelTest, HitAfterInsert) {
  CacheLevel level({1024, 4, 64});  // 16 lines, 4 sets
  EXPECT_FALSE(level.Lookup(5));
  level.Insert(5, nullptr);
  EXPECT_TRUE(level.Lookup(5));
  EXPECT_TRUE(level.Contains(5));
}

TEST(CacheLevelTest, LruEvictionOrder) {
  // 1 set x 2 ways: inserting three lines mapping to the same set evicts the LRU.
  CacheLevel level({128, 2, 64});
  ASSERT_EQ(level.sets(), 1u);
  level.Insert(0, nullptr);
  level.Insert(1, nullptr);
  EXPECT_TRUE(level.Lookup(0));  // touch 0: now 1 is LRU
  uint64_t evicted = 0;
  EXPECT_TRUE(level.Insert(2, &evicted));
  EXPECT_EQ(evicted, 1u);
  EXPECT_TRUE(level.Contains(0));
  EXPECT_FALSE(level.Contains(1));
}

TEST(CacheLevelTest, InvalidateRemoves) {
  CacheLevel level({1024, 4, 64});
  level.Insert(9, nullptr);
  EXPECT_TRUE(level.Invalidate(9));
  EXPECT_FALSE(level.Contains(9));
  EXPECT_FALSE(level.Invalidate(9));
}

TEST(CacheLevelTest, SetIsolation) {
  CacheLevel level({512, 2, 64});  // 4 sets
  // Lines 0 and 4 map to set 0; line 1 maps to set 1 and must be unaffected.
  level.Insert(1, nullptr);
  level.Insert(0, nullptr);
  level.Insert(4, nullptr);
  level.Insert(8, nullptr);  // evicts within set 0 only
  EXPECT_TRUE(level.Contains(1));
}

CacheInfo TinyGeometry(bool exclusive) {
  CacheInfo info;
  info.l1_bytes = 1024;   // 16 lines
  info.l2_bytes = 4096;   // 64 lines
  info.l3_bytes = 16384;  // 256 lines
  info.l1_ways = 2;
  info.l2_ways = 4;
  info.l3_ways = 4;
  info.l3_exclusive = exclusive;
  return info;
}

TEST(CacheHierarchyTest, ColdMissThenHits) {
  CacheHierarchy sim(TinyGeometry(true));
  EXPECT_EQ(sim.Access(0, 4), HitLevel::kDram);
  EXPECT_EQ(sim.Access(0, 4), HitLevel::kL1);
  EXPECT_EQ(sim.Access(32, 4), HitLevel::kL1);  // same line
  EXPECT_EQ(sim.counters().accesses, 3u);
  EXPECT_EQ(sim.counters().hits[0], 2u);
  EXPECT_EQ(sim.counters().dram_lines, 1u);
}

TEST(CacheHierarchyTest, CountersConservation) {
  CacheHierarchy sim(TinyGeometry(true));
  XorShiftRng rng(3);
  for (int i = 0; i < 20000; ++i) {
    // 4-byte aligned 4-byte loads never straddle a line.
    sim.Access(rng.NextBounded(1 << 18) * 4, 4);
  }
  const CacheCounters& c = sim.counters();
  EXPECT_EQ(c.accesses, 20000u);
  EXPECT_EQ(c.hits[0] + c.misses[0], c.accesses);
  EXPECT_EQ(c.hits[1] + c.misses[1], c.misses[0]);
  EXPECT_EQ(c.hits[2] + c.misses[2], c.misses[1]);
  EXPECT_EQ(c.hits[3], c.misses[2]);
  EXPECT_EQ(c.dram_lines, c.misses[2]);
}

TEST(CacheHierarchyTest, ExclusiveLlcDisjointness) {
  CacheHierarchy sim(TinyGeometry(true));
  XorShiftRng rng(5);
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 5000; ++i) {
    uint64_t addr = rng.NextBounded(1 << 16);
    addrs.push_back(addr);
    sim.Access(addr, 4);
  }
  for (uint64_t addr : addrs) {
    ASSERT_TRUE(sim.L2L3Disjoint(addr / 64));
  }
}

TEST(CacheHierarchyTest, ExclusiveL3HoldsL2Victims) {
  CacheHierarchy sim(TinyGeometry(true));
  // Fill well past L2 capacity (64 lines) but within L3; early lines must be
  // servable from L3 (not DRAM) on re-access.
  for (uint64_t line = 0; line < 128; ++line) {
    sim.Access(line * 64, 4);
  }
  sim.ResetCounters();
  uint64_t l3_hits = 0;
  for (uint64_t line = 0; line < 128; ++line) {
    if (sim.Access(line * 64, 4) == HitLevel::kL3) {
      ++l3_hits;
    }
  }
  EXPECT_GT(l3_hits, 0u);
  EXPECT_EQ(sim.counters().dram_lines, 0u);  // everything still cached somewhere
}

TEST(CacheHierarchyTest, WorkingSetSweepShowsCapacityCliffs) {
  // Random accesses within working sets of growing size: the DRAM "hit" fraction
  // must be ~0 while the set fits in total cache capacity, then grow.
  for (bool exclusive : {true, false}) {
    CacheInfo info = TinyGeometry(exclusive);
    auto dram_fraction = [&](uint64_t ws_bytes) {
      CacheHierarchy sim(info);
      XorShiftRng rng(7);
      for (int i = 0; i < 30000; ++i) {
        sim.Access(rng.NextBounded(ws_bytes), 4);
      }
      return static_cast<double>(sim.counters().hits[3]) /
             static_cast<double>(sim.counters().accesses);
    };
    double small = dram_fraction(2048);
    double huge = dram_fraction(1 << 22);
    EXPECT_LT(small, 0.05) << "exclusive=" << exclusive;
    EXPECT_GT(huge, 0.5) << "exclusive=" << exclusive;
  }
}

TEST(CacheHierarchyTest, ExclusiveBeatsInclusiveOnMidSizeWorkingSet) {
  // The §2.3 argument: exclusive L2+L3 give more effective capacity. Pick a working
  // set between l3 and l2+l3.
  uint64_t ws = 18 * 1024;
  auto dram_fraction = [&](bool exclusive) {
    CacheHierarchy sim(TinyGeometry(exclusive));
    XorShiftRng rng(11);
    for (int i = 0; i < 60000; ++i) {
      sim.Access(rng.NextBounded(ws), 4);
    }
    return static_cast<double>(sim.counters().hits[3]) /
           static_cast<double>(sim.counters().accesses);
  };
  EXPECT_LT(dram_fraction(true), dram_fraction(false));
}

TEST(CacheHierarchyTest, MultiLineAccessTouchesEachLine) {
  CacheHierarchy sim(TinyGeometry(true));
  sim.Access(0, 256);  // 4 lines
  EXPECT_EQ(sim.counters().accesses, 4u);
  EXPECT_EQ(sim.counters().dram_lines, 4u);
}

TEST(LatencyModelTest, BoundTimesAndTotals) {
  LatencyModel model;
  CacheCounters c;
  c.accesses = 100;
  c.hits[0] = 50;
  c.hits[1] = 30;
  c.hits[2] = 15;
  c.hits[3] = 5;
  double total = model.TotalNs(c);
  EXPECT_NEAR(total, 50 * 0.77 + 30 * 0.95 + 15 * 2.60 + 5 * 18.35, 1e-9);
  EXPECT_NEAR(model.BoundNs(c, 3), 5 * 18.35, 1e-9);
  EXPECT_NEAR(model.BoundNs(c, 0) + model.BoundNs(c, 1) + model.BoundNs(c, 2) +
                  model.BoundNs(c, 3),
              total, 1e-9);
}

TEST(LatencyModelTest, Table1ReferenceShape) {
  // The paper's measured ladder: sequential < random < pointer-chase at every
  // level, and latencies grow down the hierarchy.
  for (int level = 0; level < 5; ++level) {
    EXPECT_LE(Table1Reference::kNs[0][level], Table1Reference::kNs[1][level]);
    EXPECT_LE(Table1Reference::kNs[1][level], Table1Reference::kNs[2][level]);
  }
  for (int pattern = 0; pattern < 3; ++pattern) {
    for (int level = 1; level < 5; ++level) {
      EXPECT_LE(Table1Reference::kNs[pattern][level - 1] * 0.9,
                Table1Reference::kNs[pattern][level]);
    }
  }
}

}  // namespace
}  // namespace fm
