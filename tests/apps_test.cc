// Tests for the application layer (src/apps): Monte-Carlo PageRank (global and
// personalized) against exact power iteration, skip-gram corpus generation, and
// the engine's seeded start-vertex support they rely on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>

#include "src/apps/embedding_corpus.h"
#include "src/apps/pagerank.h"
#include "src/gen/powerlaw_graph.h"
#include "src/graph/degree_sort.h"
#include "tests/test_util.h"

namespace fm {
namespace {

CsrGraph SkewedGraph(Vid n) {
  PowerLawConfig config;
  config.degrees.num_vertices = n;
  config.degrees.avg_degree = 8;
  config.degrees.alpha = 0.75;
  config.degrees.max_degree = n / 8;
  return GeneratePowerLawGraph(config);
}

TEST(SeededStartTest, WalkersStartExactlyAtSeeds) {
  CsrGraph g = SkewedGraph(2000);
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.steps = 3;
  spec.num_walkers = 9000;
  spec.start_vertices = {5, 17, 100};
  WalkResult result = engine.Run(spec);
  std::vector<uint64_t> starts(3, 0);
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    Vid s = result.paths.At(w, 0);
    ASSERT_TRUE(s == 5 || s == 17 || s == 100) << s;
    ++starts[s == 5 ? 0 : (s == 17 ? 1 : 2)];
  }
  // Round-robin assignment: exactly a third each.
  EXPECT_EQ(starts[0], 3000u);
  EXPECT_EQ(starts[1], 3000u);
  EXPECT_EQ(starts[2], 3000u);
}

TEST(SeededStartTest, SeedsRespectedAcrossEpisodes) {
  CsrGraph g = SkewedGraph(500);
  EngineOptions options;
  options.dram_budget_bytes = 1 << 20;  // force episodes
  FlashMobEngine engine(g, options);
  WalkSpec spec;
  spec.steps = 2;
  spec.num_walkers = 90000;
  spec.start_vertices = {7};
  WalkResult result = engine.Run(spec);
  ASSERT_GT(result.stats.episodes, 1u);
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    ASSERT_EQ(result.paths.At(w, 0), 7u);
  }
}

TEST(SeededStartTest, RejectsOutOfRangeSeed) {
  CsrGraph g = SkewedGraph(100);
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.steps = 1;
  spec.num_walkers = 10;
  spec.start_vertices = {1000};
  EXPECT_DEATH(engine.Run(spec), "out of range");
}

TEST(PageRankTest, GlobalMatchesPowerIteration) {
  CsrGraph g = SkewedGraph(3000);
  PageRankOptions options;
  options.walkers_per_vertex = 30;
  options.seed = 4;
  auto estimate = EstimatePageRank(g, options);
  auto exact = PowerIterationPageRank(g, options);
  // Both are probability vectors...
  EXPECT_NEAR(std::accumulate(estimate.begin(), estimate.end(), 0.0), 1.0, 1e-9);
  EXPECT_NEAR(std::accumulate(exact.begin(), exact.end(), 0.0), 1.0, 1e-6);
  // ...and close in L1 (MC error ~ 1/sqrt(samples)).
  EXPECT_LT(L1Distance(estimate, exact), 0.08);
  // Top-10 vertices agree strongly (ranking is what applications use).
  std::vector<Vid> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](Vid a, Vid b) { return exact[a] > exact[b]; });
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(estimate[order[i]], exact[order[i]], exact[order[i]] * 0.2)
        << "rank " << i;
  }
}

TEST(PageRankTest, PersonalizedConcentratesNearSeeds) {
  CsrGraph g = SkewedGraph(2000);
  PageRankOptions options;
  options.walkers_per_vertex = 20;
  options.personalization = {42};
  auto estimate = EstimatePageRank(g, options);
  auto exact = PowerIterationPageRank(g, options);
  EXPECT_LT(L1Distance(estimate, exact), 0.1);
  // The seed's own score dominates the global average by a wide margin.
  EXPECT_GT(estimate[42], 5.0 / g.num_vertices());
}

TEST(PageRankTest, WeightedGraphUsesWeights) {
  // Fan 0 -> {1 (w=1), 2 (w=9)} with returns; PR mass at 2 must far exceed 1.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0f);
  b.AddEdge(0, 2, 9.0f);
  b.AddEdge(1, 0);
  b.AddEdge(2, 0);
  CsrGraph g = DegreeSort(b.Build()).graph;
  PageRankOptions options;
  options.walkers_per_vertex = 3000;
  auto estimate = EstimatePageRank(g, options);
  auto exact = PowerIterationPageRank(g, options);
  EXPECT_LT(L1Distance(estimate, exact), 0.05);
  // Map original IDs through the sort (identity here: degrees 2,1,1 keep order).
  EXPECT_GT(estimate[2], estimate[1] * 3);
}

TEST(CorpusTest, PairCountAndWindow) {
  // One walker, path 0-1-2-3 (ring), window 1: pairs = 2*(len-1) = 6.
  PathSet paths(1, 3);
  paths.Row(0) = {0};
  paths.Row(1) = {1};
  paths.Row(2) = {2};
  paths.Row(3) = {3};
  CorpusOptions options;
  options.window = 1;
  std::vector<std::pair<Vid, Vid>> pairs;
  uint64_t count = ForEachSkipGramPair(
      paths, options, [&](Vid a, Vid b) { pairs.push_back({a, b}); });
  EXPECT_EQ(count, 6u);
  EXPECT_EQ(pairs[0], (std::pair<Vid, Vid>{0, 1}));
  // Window 2 adds the distance-2 pairs: 6 + 4 = 10.
  options.window = 2;
  EXPECT_EQ(ForEachSkipGramPair(paths, options, [](Vid, Vid) {}), 10u);
}

TEST(CorpusTest, TerminatedPathsTruncate) {
  PathSet paths(1, 3);
  paths.Row(0) = {0};
  paths.Row(1) = {1};
  paths.Row(2) = {kInvalidVid};
  paths.Row(3) = {kInvalidVid};
  CorpusOptions options;
  options.window = 2;
  EXPECT_EQ(ForEachSkipGramPair(paths, options, [](Vid, Vid) {}), 2u);
}

TEST(CorpusTest, IdMapApplied) {
  PathSet paths(1, 1);
  paths.Row(0) = {0};
  paths.Row(1) = {1};
  std::vector<Vid> map{100, 200};
  CorpusOptions options;
  options.window = 1;
  options.id_map = &map;
  std::vector<std::pair<Vid, Vid>> pairs;
  ForEachSkipGramPair(paths, options,
                      [&](Vid a, Vid b) { pairs.push_back({a, b}); });
  EXPECT_EQ(pairs[0], (std::pair<Vid, Vid>{100, 200}));
  auto counts = CorpusTokenCounts(paths, 300, options);
  EXPECT_EQ(counts[100], 1u);
  EXPECT_EQ(counts[200], 1u);
}

TEST(CorpusTest, BinaryFileRoundTrip) {
  CsrGraph g = SkewedGraph(500);
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.steps = 10;
  spec.num_walkers = 1000;
  WalkResult result = engine.Run(spec);

  auto path = std::filesystem::temp_directory_path() / "fm_corpus_test.bin";
  CorpusOptions options;
  options.window = 3;
  uint64_t written = WriteSkipGramPairs(result.paths, options, path.string());
  EXPECT_EQ(std::filesystem::file_size(path), written * 8);
  // Re-read and validate every pair is within vertex range.
  std::ifstream in(path, std::ios::binary);
  std::vector<uint32_t> data(written * 2);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * 4));
  ASSERT_TRUE(in.good());
  for (uint32_t v : data) {
    ASSERT_LT(v, g.num_vertices());
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fm
