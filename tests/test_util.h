// Shared helpers for the FlashMob test suite.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "src/graph/csr_graph.h"
#include "src/graph/degree_sort.h"
#include "src/graph/graph_builder.h"

namespace fm {

// Small hand-checkable graph: a 4-cycle with chords (directed, every vertex has
// out-degree >= 1).
//   0 -> 1, 2, 3;  1 -> 0, 2;  2 -> 3;  3 -> 0
inline CsrGraph SmallGraph() {
  GraphBuilder b(4);
  for (auto [u, v] : std::vector<std::pair<Vid, Vid>>{
           {0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 2}, {2, 3}, {3, 0}}) {
    b.AddEdge(u, v);
  }
  return b.Build();
}

// The same graph already degree-sorted (it happens to be: degrees 3,2,1,1).
inline CsrGraph SmallSortedGraph() { return DegreeSort(SmallGraph()).graph; }

// Undirected star: center 0 connected to n-1 leaves (degree skew in miniature).
inline CsrGraph StarGraph(Vid n) {
  GraphBuilder b(n);
  for (Vid v = 1; v < n; ++v) {
    b.AddEdge(0, v);
  }
  return b.Build({.undirected = true});
}

// Directed ring 0 -> 1 -> ... -> n-1 -> 0 (deterministic walks: degree 1).
inline CsrGraph RingGraph(Vid n) {
  GraphBuilder b(n);
  for (Vid v = 0; v < n; ++v) {
    b.AddEdge(v, (v + 1) % n);
  }
  return b.Build();
}

// Complete directed graph without self loops.
inline CsrGraph CompleteGraph(Vid n) {
  GraphBuilder b(n);
  for (Vid u = 0; u < n; ++u) {
    for (Vid v = 0; v < n; ++v) {
      if (u != v) {
        b.AddEdge(u, v);
      }
    }
  }
  return b.Build();
}

}  // namespace fm

#endif  // TESTS_TEST_UTIL_H_
