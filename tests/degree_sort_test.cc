#include "src/graph/degree_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/gen/powerlaw_graph.h"
#include "tests/test_util.h"

namespace fm {
namespace {

TEST(DegreeSortTest, ProducesDescendingDegrees) {
  PowerLawConfig config;
  config.degrees.num_vertices = 2000;
  config.degrees.avg_degree = 8;
  config.shuffle_labels = true;
  CsrGraph g = GeneratePowerLawGraph(config);
  EXPECT_FALSE(IsDegreeSorted(g));  // labels were shuffled

  DegreeSortedGraph sorted = DegreeSort(g);
  EXPECT_TRUE(IsDegreeSorted(sorted.graph));
  sorted.graph.CheckValid();
}

TEST(DegreeSortTest, MappingsAreInversePermutations) {
  PowerLawConfig config;
  config.degrees.num_vertices = 500;
  config.degrees.avg_degree = 4;
  config.shuffle_labels = true;
  CsrGraph g = GeneratePowerLawGraph(config);
  DegreeSortedGraph sorted = DegreeSort(g);
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(sorted.old_to_new[sorted.new_to_old[v]], v);
    EXPECT_EQ(sorted.new_to_old[sorted.old_to_new[v]], v);
  }
}

TEST(DegreeSortTest, PreservesEdgeStructure) {
  CsrGraph g = SmallGraph();
  DegreeSortedGraph sorted = DegreeSort(g);
  EXPECT_EQ(sorted.graph.num_edges(), g.num_edges());
  // Every original edge must exist under the new labels, and vice versa.
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    for (Vid u : g.neighbors(v)) {
      EXPECT_TRUE(
          sorted.graph.HasEdge(sorted.old_to_new[v], sorted.old_to_new[u]));
    }
  }
  for (Vid v = 0; v < sorted.graph.num_vertices(); ++v) {
    for (Vid u : sorted.graph.neighbors(v)) {
      EXPECT_TRUE(g.HasEdge(sorted.new_to_old[v], sorted.new_to_old[u]));
    }
  }
}

TEST(DegreeSortTest, StableWithinEqualDegrees) {
  // Ring: every degree equal; counting sort must keep original order (stability).
  CsrGraph g = RingGraph(16);
  DegreeSortedGraph sorted = DegreeSort(g);
  for (Vid v = 0; v < 16; ++v) {
    EXPECT_EQ(sorted.new_to_old[v], v);
  }
}

TEST(DegreeSortTest, AdjacencyStaysSorted) {
  PowerLawConfig config;
  config.degrees.num_vertices = 300;
  config.degrees.avg_degree = 5;
  config.shuffle_labels = true;
  DegreeSortedGraph sorted = DegreeSort(GeneratePowerLawGraph(config));
  EXPECT_TRUE(sorted.graph.AdjacencySorted());
}

TEST(DegreeSortTest, EmptyGraph) {
  DegreeSortedGraph sorted = DegreeSort(CsrGraph({0}, {}));
  EXPECT_EQ(sorted.graph.num_vertices(), 0u);
}

TEST(DegreeSortTest, AlreadySortedIsIdentity) {
  CsrGraph g = SmallSortedGraph();
  ASSERT_TRUE(IsDegreeSorted(g));
  DegreeSortedGraph sorted = DegreeSort(g);
  std::vector<Vid> identity(g.num_vertices());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(sorted.new_to_old, identity);
}

}  // namespace
}  // namespace fm
