// Runtime behavior of the annotated sync primitives (src/util/sync.h):
// MutexLock mutual exclusion, TryLock semantics, and the CondVar handshake
// (Wait releases the mutex for the block and returns with it held). The
// compile-time side — the thread-safety annotations themselves — is exercised
// by building the tree with Clang -Werror=thread-safety (CI job
// clang-thread-safety). Guarded state lives in small structs because the
// analysis attributes apply to data members, not locals.
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/util/sync.h"

namespace {

struct GuardedCounter {
  fm::Mutex mu;
  long value FM_GUARDED_BY(mu) = 0;
};

TEST(SyncTest, MutexLockProvidesMutualExclusion) {
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  GuardedCounter counter;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        fm::MutexLock lock(counter.mu);
        ++counter.value;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  fm::MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, static_cast<long>(kThreads) * kIters);
}

TEST(SyncTest, TryLockFailsWhenHeldAndSucceedsWhenFree) {
  fm::Mutex mu;
  {
    fm::MutexLock lock(mu);
    // Probe from another thread: the same thread re-locking a std::mutex is
    // undefined behavior, so contention must come from outside.
    bool acquired = true;
    std::thread probe([&] {
      acquired = mu.TryLock();
      if (acquired) {
        mu.Unlock();  // fmlint:allow(manual-lock) TryLock has no RAII adopter
      }
    });
    probe.join();
    EXPECT_FALSE(acquired);
  }
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();  // fmlint:allow(manual-lock) TryLock has no RAII adopter
}

struct Handshake {
  fm::Mutex mu;
  fm::CondVar cv;
  bool ready FM_GUARDED_BY(mu) = false;
  bool observed FM_GUARDED_BY(mu) = false;
};

TEST(SyncTest, CondVarWaitReleasesMutexAndWakesOnNotify) {
  Handshake hs;

  std::thread waiter([&] {
    fm::MutexLock lock(hs.mu);
    while (!hs.ready) {
      hs.cv.Wait(hs.mu);
    }
    hs.observed = true;
  });

  {
    // If Wait failed to release the mutex, this lock acquisition (and hence
    // the notify) would deadlock against the parked waiter.
    fm::MutexLock lock(hs.mu);
    hs.ready = true;
  }
  hs.cv.NotifyOne();
  waiter.join();

  fm::MutexLock lock(hs.mu);
  EXPECT_TRUE(hs.observed);
}

struct Barrier {
  fm::Mutex mu;
  fm::CondVar cv;
  bool go FM_GUARDED_BY(mu) = false;
  int woken FM_GUARDED_BY(mu) = 0;
};

TEST(SyncTest, WaitForTimesOutWhenNobodyNotifies) {
  Handshake hs;
  fm::MutexLock lock(hs.mu);
  // Nobody will ever notify: WaitFor must come back on its own and report
  // the timeout (false) with the mutex re-held.
  EXPECT_FALSE(hs.cv.WaitFor(hs.mu, 10));
  hs.observed = true;  // mutex is held again; annotated write must compile
  EXPECT_TRUE(hs.observed);
}

struct TimedHandshake {
  fm::Mutex mu;
  fm::CondVar cv;
  bool parked FM_GUARDED_BY(mu) = false;
  bool ready FM_GUARDED_BY(mu) = false;
  bool notified FM_GUARDED_BY(mu) = false;
};

TEST(SyncTest, WaitForReturnsTrueWhenNotifiedBeforeTimeout) {
  TimedHandshake hs;

  std::thread waiter([&] {
    fm::MutexLock lock(hs.mu);
    hs.parked = true;
    hs.cv.NotifyAll();
    // Generous timeout so a slow notifier cannot turn this into a flake;
    // the loop re-arms against spurious wakeups.
    bool woke_by_notify = false;
    while (!hs.ready) {
      woke_by_notify = hs.cv.WaitFor(hs.mu, 60000);
    }
    hs.notified = woke_by_notify;
  });

  {
    fm::MutexLock lock(hs.mu);
    // The waiter sets `parked` and enters WaitFor without dropping the mutex
    // in between, so acquiring it here with parked==true proves the waiter
    // is inside the wait — the notify below cannot be lost.
    while (!hs.parked) {
      hs.cv.Wait(hs.mu);
    }
    hs.ready = true;
  }
  hs.cv.NotifyAll();
  waiter.join();

  fm::MutexLock lock(hs.mu);
  EXPECT_TRUE(hs.notified);
}

TEST(SyncTest, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 4;
  Barrier barrier;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      fm::MutexLock lock(barrier.mu);
      while (!barrier.go) {
        barrier.cv.Wait(barrier.mu);
      }
      ++barrier.woken;
    });
  }

  {
    fm::MutexLock lock(barrier.mu);
    barrier.go = true;
  }
  barrier.cv.NotifyAll();
  for (auto& th : waiters) {
    th.join();
  }

  fm::MutexLock lock(barrier.mu);
  EXPECT_EQ(barrier.woken, kWaiters);
}

}  // namespace
