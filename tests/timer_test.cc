// Timer (src/util/timer.h): Lap() folds the lap into the total and restarts
// the lap, so consecutive laps partition wall time and TotalSeconds() is
// exactly the sum of the returned laps; Reset clears; Elapsed is monotonic.
#include "src/util/timer.h"

#include <gtest/gtest.h>

namespace fm {
namespace {

// Spins until `t` has seen at least `seconds` elapse (steady clock, so this
// cannot hang on NTP adjustments).
void BusyWaitSeconds(const Timer& t, double seconds) {
  while (t.Elapsed() < seconds) {
  }
}

TEST(TimerTest, LapFoldsIntoTotalExactly) {
  Timer t;
  double total = 0;
  for (int i = 0; i < 3; ++i) {
    BusyWaitSeconds(t, 0.01);
    double lap = t.Lap();
    EXPECT_GE(lap, 0.01);
    total += lap;
    // The total is exactly the sum of returned laps (same additions, same
    // doubles — not an approximation).
    EXPECT_DOUBLE_EQ(t.TotalSeconds(), total);
  }
}

TEST(TimerTest, LapRestartsTheLap) {
  Timer t;
  BusyWaitSeconds(t, 0.05);
  double first = t.Lap();
  EXPECT_GE(first, 0.05);
  // Immediately after Lap() the running lap restarted from ~zero: a second
  // Lap() must be far smaller than the busy-wait, not include it again.
  double second = t.Lap();
  EXPECT_LT(second, 0.05);
  EXPECT_GE(second, 0.0);
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), first + second);
}

TEST(TimerTest, ResetClearsTotalAndRestarts) {
  Timer t;
  BusyWaitSeconds(t, 0.01);
  t.Lap();
  EXPECT_GT(t.TotalSeconds(), 0.0);
  t.Reset();
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 0.0);
  // Elapsed restarted too.
  EXPECT_LT(t.Elapsed(), 0.01);
}

TEST(TimerTest, ElapsedIsMonotonicAndStartResets) {
  Timer t;
  double a = t.Elapsed();
  double b = t.Elapsed();
  EXPECT_GE(b, a);
  BusyWaitSeconds(t, 0.01);
  t.Start();
  EXPECT_LT(t.Elapsed(), 0.01);
  // Start() does not touch the accumulated total.
  EXPECT_DOUBLE_EQ(t.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace fm
