// Weighted-graph and weighted-walk tests: builder/IO/degree-sort weight plumbing,
// per-vertex alias tables, and weighted first-order walks across all engines.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/baseline/knightking_engine.h"
#include "src/core/engine.h"
#include "src/graph/degree_sort.h"
#include "src/graph/edge_io.h"
#include "src/cachesim/mem_hook.h"
#include "src/sampling/vertex_alias.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "tests/test_util.h"

namespace fm {
namespace {

// 0 -> 1 (w=1), 0 -> 2 (w=3), 0 -> 3 (w=6); plus return edges so the walk lives.
CsrGraph WeightedFan() {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0f);
  b.AddEdge(0, 2, 3.0f);
  b.AddEdge(0, 3, 6.0f);
  for (Vid v = 1; v < 4; ++v) {
    b.AddEdge(v, 0, 1.0f);
  }
  return b.Build();
}

TEST(WeightedBuilderTest, WeightsFollowSortedAdjacency) {
  GraphBuilder b(3);
  b.AddEdge(0, 2, 5.0f);  // added out of order on purpose
  b.AddEdge(0, 1, 2.0f);
  CsrGraph g = b.Build();
  ASSERT_TRUE(g.weighted());
  auto nbrs = g.neighbors(0);
  auto wts = g.neighbor_weights(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_FLOAT_EQ(wts[0], 2.0f);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_FLOAT_EQ(wts[1], 5.0f);
}

TEST(WeightedBuilderTest, AllOnesStaysUnweighted) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0, 1.0f);
  CsrGraph g = b.Build();
  EXPECT_FALSE(g.weighted());
}

TEST(WeightedBuilderTest, RejectsNonPositiveWeight) {
  GraphBuilder b(2);
  EXPECT_THROW(b.AddEdge(0, 1, 0.0f), std::invalid_argument);
  EXPECT_THROW(b.AddEdge(0, 1, -2.0f), std::invalid_argument);
}

TEST(WeightedBuilderTest, DedupSumsWeights) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(0, 1, 3.0f);
  CsrGraph g = b.Build({.remove_duplicate_edges = true});
  ASSERT_EQ(g.degree(0), 1u);
  EXPECT_FLOAT_EQ(g.neighbor_weights(0)[0], 5.0f);
}

TEST(WeightedIoTest, TextRoundTripWithWeights) {
  auto dir = std::filesystem::temp_directory_path() / "fm_weighted_io";
  std::filesystem::create_directories(dir);
  CsrGraph original = WeightedFan();
  SaveEdgeListText(original, (dir / "w.txt").string());
  CsrGraph loaded = LoadEdgeListText((dir / "w.txt").string());
  EXPECT_TRUE(loaded.weighted());
  EXPECT_TRUE(Identical(loaded, original));
  std::filesystem::remove_all(dir);
}

TEST(WeightedIoTest, BinaryAndMappedRoundTripWithWeights) {
  auto dir = std::filesystem::temp_directory_path() / "fm_weighted_bin";
  std::filesystem::create_directories(dir);
  CsrGraph original = WeightedFan();
  SaveCsrBinary(original, (dir / "w.csr").string());
  CsrGraph loaded = LoadCsrBinary((dir / "w.csr").string());
  EXPECT_TRUE(Identical(loaded, original));
  CsrGraph mapped = LoadCsrBinaryMapped((dir / "w.csr").string());
  EXPECT_TRUE(mapped.weighted());
  EXPECT_TRUE(Identical(mapped, original));
  std::filesystem::remove_all(dir);
}

TEST(WeightedDegreeSortTest, WeightsSurviveRelabelling) {
  // Shuffle a weighted graph through DegreeSort; each relabelled edge must keep
  // its original weight.
  GraphBuilder b(5);
  // Unique weight per edge encodes (from, to).
  for (Vid u = 0; u < 5; ++u) {
    for (Vid v = 0; v < 5; ++v) {
      if (u != v && (u + v) % 2 == 0) {
        b.AddEdge(u, v, static_cast<float>(10 * u + v + 1));
      }
    }
  }
  b.AddEdge(4, 0, 100.0f);  // break degree ties
  CsrGraph g = b.Build();
  DegreeSortedGraph sorted = DegreeSort(g);
  ASSERT_TRUE(sorted.graph.weighted());
  for (Vid nv = 0; nv < sorted.graph.num_vertices(); ++nv) {
    Vid old_v = sorted.new_to_old[nv];
    auto nbrs = sorted.graph.neighbors(nv);
    auto wts = sorted.graph.neighbor_weights(nv);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      Vid old_t = sorted.new_to_old[nbrs[i]];
      // Find the weight in the original adjacency.
      auto onbrs = g.neighbors(old_v);
      auto owts = g.neighbor_weights(old_v);
      bool found = false;
      for (size_t j = 0; j < onbrs.size(); ++j) {
        if (onbrs[j] == old_t && owts[j] == wts[i]) {
          found = true;
        }
      }
      ASSERT_TRUE(found) << nv << "->" << nbrs[i];
    }
  }
}

TEST(VertexAliasTest, MatchesWeightDistribution) {
  CsrGraph g = WeightedFan();
  VertexAliasTables alias(g);
  XorShiftRng rng(5);
  NullMemHook hook;
  const uint64_t draws = 1 << 18;
  std::vector<uint64_t> counts(4, 0);
  for (uint64_t i = 0; i < draws; ++i) {
    ++counts[alias.SampleNeighbor(g, 0, rng, hook)];
  }
  std::vector<uint64_t> observed{counts[1], counts[2], counts[3]};
  std::vector<double> expected{draws * 0.1, draws * 0.3, draws * 0.6};
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

TEST(VertexAliasTest, RequiresWeightedGraph) {
  CsrGraph g = SmallGraph();
  EXPECT_DEATH(VertexAliasTables tables(g), "weighted");
}

class WeightedWalkTest : public ::testing::TestWithParam<SamplePolicy> {};

TEST_P(WeightedWalkTest, FlashMobTransitionsFollowWeights) {
  // All walkers on the fan hub; one step must distribute 1:3:6 under both PS
  // (weighted refill) and DS (alias draw) policies.
  CsrGraph g = DegreeSort(WeightedFan()).graph;
  Vid hub = 0;  // highest degree after sorting
  ASSERT_EQ(g.degree(hub), 3u);

  FlashMobEngine engine(g);
  engine.SetPlan(PartitionPlan::BuildUniform(g, 1, GetParam()));
  WalkSpec spec;
  spec.steps = 1;
  spec.num_walkers = 1 << 17;
  spec.use_edge_weights = true;
  spec.seed = 3;
  WalkResult result = engine.Run(spec);

  std::vector<uint64_t> counts(4, 0);
  uint64_t from_hub = 0;
  for (Wid w = 0; w < result.paths.num_walkers(); ++w) {
    if (result.paths.At(w, 0) == hub) {
      ++from_hub;
      ++counts[result.paths.At(w, 1)];
    }
  }
  ASSERT_GT(from_hub, 10000u);
  // Map hub's neighbors back to weights via neighbor_weights order.
  auto nbrs = g.neighbors(hub);
  auto wts = g.neighbor_weights(hub);
  double total_w = 0;
  for (float w : wts) {
    total_w += w;
  }
  std::vector<uint64_t> observed;
  std::vector<double> expected;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    observed.push_back(counts[nbrs[i]]);
    expected.push_back(wts[i] / total_w * static_cast<double>(from_hub));
  }
  EXPECT_TRUE(ChiSquareTestPasses(observed, expected));
}

INSTANTIATE_TEST_SUITE_P(Policies, WeightedWalkTest,
                         ::testing::Values(SamplePolicy::kPS, SamplePolicy::kDS));

TEST(WeightedWalkTest, FlashMobMatchesKnightKingWeighted) {
  // A weighted skewed graph: both engines must converge to the same weighted
  // stationary behaviour.
  GraphBuilder b(200);
  XorShiftRng wrng(9);
  for (Vid u = 0; u < 200; ++u) {
    for (int k = 0; k < 6; ++k) {
      Vid v = static_cast<Vid>(wrng.NextBounded(200));
      if (v != u) {
        b.AddEdge(u, v, 0.5f + static_cast<float>(wrng.NextBounded(8)));
      }
    }
  }
  CsrGraph g = DegreeSort(b.Build()).graph;
  WalkSpec spec;
  spec.steps = 12;
  spec.num_walkers = 60000;
  spec.use_edge_weights = true;
  spec.keep_paths = false;

  FlashMobEngine fmob(g);
  auto fm_counts = fmob.Run(spec).visit_counts;
  KnightKingEngine knk(g);
  auto knk_counts = knk.Run(spec).visit_counts;

  uint64_t fm_total = 0, knk_total = 0;
  for (Vid v = 0; v < g.num_vertices(); ++v) {
    fm_total += fm_counts[v];
    knk_total += knk_counts[v];
  }
  for (Vid v = 0; v < 50; ++v) {
    double a = static_cast<double>(fm_counts[v]) / fm_total;
    double b2 = static_cast<double>(knk_counts[v]) / knk_total;
    ASSERT_NEAR(a, b2, 0.15 * std::max(a, b2) + 1e-4) << v;
  }
}

TEST(WeightedWalkTest, RejectsUnweightedGraph) {
  CsrGraph g = SmallSortedGraph();
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.use_edge_weights = true;
  spec.num_walkers = 10;
  spec.steps = 1;
  EXPECT_DEATH(engine.Run(spec), "weighted");
}

TEST(WeightedWalkTest, WeightedVsUniformDiffer) {
  // Sanity: with extreme weights the walk must visibly depart from uniform.
  CsrGraph g = DegreeSort(WeightedFan()).graph;
  FlashMobEngine engine(g);
  WalkSpec spec;
  spec.steps = 1;
  spec.num_walkers = 1 << 16;
  spec.seed = 7;
  auto uniform = engine.Run(spec);
  spec.use_edge_weights = true;
  auto weighted = engine.Run(spec);
  // Under weights, neighbor with w=6 receives ~6x the w=1 neighbor's traffic.
  auto count_to = [&](const WalkResult& r, Vid target) {
    uint64_t c = 0;
    for (Wid w = 0; w < r.paths.num_walkers(); ++w) {
      c += r.paths.At(w, 0) == 0 && r.paths.At(w, 1) == target;
    }
    return c;
  };
  auto nbrs = g.neighbors(0);
  auto wts = g.neighbor_weights(0);
  // Find the heaviest and lightest neighbors.
  size_t heavy = 0, light = 0;
  for (size_t i = 0; i < wts.size(); ++i) {
    if (wts[i] > wts[heavy]) heavy = i;
    if (wts[i] < wts[light]) light = i;
  }
  double weighted_ratio =
      static_cast<double>(count_to(weighted, nbrs[heavy]) + 1) /
      static_cast<double>(count_to(weighted, nbrs[light]) + 1);
  double uniform_ratio =
      static_cast<double>(count_to(uniform, nbrs[heavy]) + 1) /
      static_cast<double>(count_to(uniform, nbrs[light]) + 1);
  EXPECT_GT(weighted_ratio, 4.0);
  EXPECT_LT(uniform_ratio, 1.5);
}

}  // namespace
}  // namespace fm
