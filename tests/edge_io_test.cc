#include "src/graph/edge_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/gen/powerlaw_graph.h"
#include "tests/test_util.h"

namespace fm {
namespace {

class EdgeIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "fm_edge_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(EdgeIoTest, TextRoundTrip) {
  CsrGraph original = SmallGraph();
  SaveEdgeListText(original, Path("g.txt"));
  CsrGraph loaded = LoadEdgeListText(Path("g.txt"));
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_TRUE(Identical(loaded, original));
}

TEST_F(EdgeIoTest, TextHandlesCommentsAndBlankLines) {
  std::ofstream out(Path("c.txt"));
  out << "# comment\n\n% other comment\n0 1\n1 0\n";
  out.close();
  CsrGraph g = LoadEdgeListText(Path("c.txt"));
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(EdgeIoTest, TextRejectsMalformedLine) {
  std::ofstream out(Path("bad.txt"));
  out << "0 1\nnot numbers\n";
  out.close();
  EXPECT_THROW(LoadEdgeListText(Path("bad.txt")), std::runtime_error);
}

TEST_F(EdgeIoTest, TextMissingFileThrows) {
  EXPECT_THROW(LoadEdgeListText(Path("nope.txt")), std::runtime_error);
}

TEST_F(EdgeIoTest, BinaryRoundTrip) {
  PowerLawConfig config;
  config.degrees.num_vertices = 5000;
  config.degrees.avg_degree = 6;
  CsrGraph original = GeneratePowerLawGraph(config);
  SaveCsrBinary(original, Path("g.csr"));
  CsrGraph loaded = LoadCsrBinary(Path("g.csr"));
  EXPECT_TRUE(Identical(loaded, original));
}

TEST_F(EdgeIoTest, MappedLoadMatchesCopyingLoad) {
  PowerLawConfig config;
  config.degrees.num_vertices = 3000;
  config.degrees.avg_degree = 8;
  CsrGraph original = GeneratePowerLawGraph(config);
  SaveCsrBinary(original, Path("m.csr"));
  CsrGraph mapped = LoadCsrBinaryMapped(Path("m.csr"));
  EXPECT_TRUE(mapped.memory_mapped());
  EXPECT_FALSE(original.memory_mapped());
  EXPECT_TRUE(Identical(mapped, original));
  // Copies of a mapped graph share the mapping and stay valid.
  CsrGraph copy = mapped;
  EXPECT_TRUE(copy.memory_mapped());
  EXPECT_TRUE(Identical(copy, original));
  EXPECT_TRUE(copy.HasEdge(0, copy.neighbors(0)[0]));
}

TEST_F(EdgeIoTest, MappedLoadRejectsCorruptFiles) {
  {
    std::ofstream out(Path("bad2.csr"), std::ios::binary);
    out << "tiny";
  }
  EXPECT_THROW(LoadCsrBinaryMapped(Path("bad2.csr")), std::runtime_error);
  CsrGraph original = SmallGraph();
  SaveCsrBinary(original, Path("t2.csr"));
  std::filesystem::resize_file(Path("t2.csr"),
                               std::filesystem::file_size(Path("t2.csr")) - 4);
  EXPECT_THROW(LoadCsrBinaryMapped(Path("t2.csr")), std::runtime_error);
}

TEST_F(EdgeIoTest, BinaryRejectsBadMagic) {
  std::ofstream out(Path("bad.csr"), std::ios::binary);
  out << "garbage data that is not a csr file at all";
  out.close();
  EXPECT_THROW(LoadCsrBinary(Path("bad.csr")), std::runtime_error);
}

TEST_F(EdgeIoTest, BinaryRejectsTruncatedFile) {
  CsrGraph original = SmallGraph();
  SaveCsrBinary(original, Path("t.csr"));
  auto size = std::filesystem::file_size(Path("t.csr"));
  std::filesystem::resize_file(Path("t.csr"), size - 8);
  EXPECT_THROW(LoadCsrBinary(Path("t.csr")), std::runtime_error);
}

// --- corrupt-header regressions ---------------------------------------------
// The loaders must validate header counts against the actual file size before
// sizing any allocation: a hostile header must produce a clean error, never a
// crash, OOM, or out-of-bounds read (in either the copying or the mmap path).

class CorruptHeaderTest : public EdgeIoTest {
 protected:
  static constexpr uint64_t kMagic = 0x464D435352303031ULL;          // FMCSR001
  static constexpr uint64_t kWeightedMagic = 0x464D435352303032ULL;  // FMCSR002

  // Writes a file with the given header and `payload_bytes` zero bytes after it.
  std::string WriteRaw(const std::string& name, uint64_t magic,
                       uint64_t num_vertices, uint64_t num_edges,
                       size_t payload_bytes) {
    std::string path = Path(name);
    std::ofstream out(path, std::ios::binary);
    uint64_t header[3] = {magic, num_vertices, num_edges};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    std::vector<char> zeros(payload_bytes, 0);
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
    return path;
  }

  void ExpectBothLoadersReject(const std::string& path) {
    EXPECT_THROW(LoadCsrBinary(path), std::runtime_error) << path;
    EXPECT_THROW(LoadCsrBinaryMapped(path), std::runtime_error) << path;
  }
};

TEST_F(CorruptHeaderTest, HugeVertexCountRejectedWithoutAllocating) {
  // 2^40 vertices would mean a 8 TiB offsets allocation if the loader trusted
  // the header; it must reject on the 32-bit id range / size check instead.
  ExpectBothLoadersReject(
      WriteRaw("huge_v.csr", kMagic, uint64_t{1} << 40, 0, 64));
}

TEST_F(CorruptHeaderTest, HugeEdgeCountRejectedWithoutAllocating) {
  ExpectBothLoadersReject(
      WriteRaw("huge_e.csr", kMagic, 3, uint64_t{1} << 60, 32 + 64));
}

TEST_F(CorruptHeaderTest, CountsInconsistentWithFileSizeRejected) {
  // Header says 3 vertices / 4 edges => payload must be exactly 4*8 + 4*4 = 48
  // bytes; give it 40 (short) and 56 (long).
  ExpectBothLoadersReject(WriteRaw("short.csr", kMagic, 3, 4, 40));
  ExpectBothLoadersReject(WriteRaw("long.csr", kMagic, 3, 4, 56));
}

TEST_F(CorruptHeaderTest, WeightedMagicWithUnweightedPayloadRejected) {
  // FMCSR002 implies a weights section; a payload sized for FMCSR001 must fail
  // the size cross-check.
  ExpectBothLoadersReject(WriteRaw("wmix.csr", kWeightedMagic, 3, 4, 48));
}

TEST_F(CorruptHeaderTest, UnknownVersionMagicRejected) {
  // Same "FMCSR" family, future version number: must be rejected, not parsed.
  ExpectBothLoadersReject(
      WriteRaw("vnext.csr", 0x464D435352303033ULL, 3, 4, 48));
}

TEST_F(CorruptHeaderTest, TrailingGarbageRejected) {
  CsrGraph original = SmallGraph();
  SaveCsrBinary(original, Path("tg.csr"));
  std::ofstream out(Path("tg.csr"), std::ios::binary | std::ios::app);
  out << "extra bytes";
  out.close();
  ExpectBothLoadersReject(Path("tg.csr"));
}

TEST_F(CorruptHeaderTest, ValidFileStillLoadsAfterHardening) {
  CsrGraph original = SmallGraph();
  SaveCsrBinary(original, Path("ok.csr"));
  EXPECT_TRUE(Identical(LoadCsrBinary(Path("ok.csr")), original));
  EXPECT_TRUE(Identical(LoadCsrBinaryMapped(Path("ok.csr")), original));
}

}  // namespace
}  // namespace fm
