#include "src/graph/edge_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/gen/powerlaw_graph.h"
#include "tests/test_util.h"

namespace fm {
namespace {

class EdgeIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "fm_edge_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(EdgeIoTest, TextRoundTrip) {
  CsrGraph original = SmallGraph();
  SaveEdgeListText(original, Path("g.txt"));
  CsrGraph loaded = LoadEdgeListText(Path("g.txt"));
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_TRUE(Identical(loaded, original));
}

TEST_F(EdgeIoTest, TextHandlesCommentsAndBlankLines) {
  std::ofstream out(Path("c.txt"));
  out << "# comment\n\n% other comment\n0 1\n1 0\n";
  out.close();
  CsrGraph g = LoadEdgeListText(Path("c.txt"));
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(EdgeIoTest, TextRejectsMalformedLine) {
  std::ofstream out(Path("bad.txt"));
  out << "0 1\nnot numbers\n";
  out.close();
  EXPECT_THROW(LoadEdgeListText(Path("bad.txt")), std::runtime_error);
}

TEST_F(EdgeIoTest, TextMissingFileThrows) {
  EXPECT_THROW(LoadEdgeListText(Path("nope.txt")), std::runtime_error);
}

TEST_F(EdgeIoTest, BinaryRoundTrip) {
  PowerLawConfig config;
  config.degrees.num_vertices = 5000;
  config.degrees.avg_degree = 6;
  CsrGraph original = GeneratePowerLawGraph(config);
  SaveCsrBinary(original, Path("g.csr"));
  CsrGraph loaded = LoadCsrBinary(Path("g.csr"));
  EXPECT_TRUE(Identical(loaded, original));
}

TEST_F(EdgeIoTest, MappedLoadMatchesCopyingLoad) {
  PowerLawConfig config;
  config.degrees.num_vertices = 3000;
  config.degrees.avg_degree = 8;
  CsrGraph original = GeneratePowerLawGraph(config);
  SaveCsrBinary(original, Path("m.csr"));
  CsrGraph mapped = LoadCsrBinaryMapped(Path("m.csr"));
  EXPECT_TRUE(mapped.memory_mapped());
  EXPECT_FALSE(original.memory_mapped());
  EXPECT_TRUE(Identical(mapped, original));
  // Copies of a mapped graph share the mapping and stay valid.
  CsrGraph copy = mapped;
  EXPECT_TRUE(copy.memory_mapped());
  EXPECT_TRUE(Identical(copy, original));
  EXPECT_TRUE(copy.HasEdge(0, copy.neighbors(0)[0]));
}

TEST_F(EdgeIoTest, MappedLoadRejectsCorruptFiles) {
  {
    std::ofstream out(Path("bad2.csr"), std::ios::binary);
    out << "tiny";
  }
  EXPECT_THROW(LoadCsrBinaryMapped(Path("bad2.csr")), std::runtime_error);
  CsrGraph original = SmallGraph();
  SaveCsrBinary(original, Path("t2.csr"));
  std::filesystem::resize_file(Path("t2.csr"),
                               std::filesystem::file_size(Path("t2.csr")) - 4);
  EXPECT_THROW(LoadCsrBinaryMapped(Path("t2.csr")), std::runtime_error);
}

TEST_F(EdgeIoTest, BinaryRejectsBadMagic) {
  std::ofstream out(Path("bad.csr"), std::ios::binary);
  out << "garbage data that is not a csr file at all";
  out.close();
  EXPECT_THROW(LoadCsrBinary(Path("bad.csr")), std::runtime_error);
}

TEST_F(EdgeIoTest, BinaryRejectsTruncatedFile) {
  CsrGraph original = SmallGraph();
  SaveCsrBinary(original, Path("t.csr"));
  auto size = std::filesystem::file_size(Path("t.csr"));
  std::filesystem::resize_file(Path("t.csr"), size - 8);
  EXPECT_THROW(LoadCsrBinary(Path("t.csr")), std::runtime_error);
}

}  // namespace
}  // namespace fm
