#include "src/gen/zipf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace fm {
namespace {

TEST(ZipfTest, MeanHitsTarget) {
  for (double avg : {2.0, 8.0, 35.0}) {
    ZipfDegreeConfig config;
    config.num_vertices = 20000;
    config.avg_degree = avg;
    config.alpha = 0.8;
    auto degrees = ZipfDegreeSequence(config);
    double mean = std::accumulate(degrees.begin(), degrees.end(), 0.0) /
                  degrees.size();
    EXPECT_NEAR(mean, avg, avg * 0.1 + 0.6) << "avg=" << avg;
  }
}

TEST(ZipfTest, DescendingOrder) {
  ZipfDegreeConfig config;
  config.num_vertices = 5000;
  config.avg_degree = 10;
  config.alpha = 0.9;
  auto degrees = ZipfDegreeSequence(config);
  EXPECT_TRUE(std::is_sorted(degrees.rbegin(), degrees.rend()));
}

TEST(ZipfTest, MinMaxRespected) {
  ZipfDegreeConfig config;
  config.num_vertices = 5000;
  config.avg_degree = 10;
  config.alpha = 1.1;
  config.min_degree = 2;
  config.max_degree = 100;
  auto degrees = ZipfDegreeSequence(config);
  EXPECT_EQ(*std::min_element(degrees.begin(), degrees.end()), 2u);
  EXPECT_LE(*std::max_element(degrees.begin(), degrees.end()), 100u);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfDegreeConfig config;
  config.num_vertices = 100;
  config.avg_degree = 7;
  config.alpha = 0.0;
  auto degrees = ZipfDegreeSequence(config);
  for (Degree d : degrees) {
    EXPECT_EQ(d, 7u);
  }
}

TEST(ZipfTest, HigherAlphaIsMoreSkewed) {
  ZipfDegreeConfig config;
  config.num_vertices = 50000;
  config.avg_degree = 20;
  config.alpha = 0.6;
  double share_low = TopShare(ZipfDegreeSequence(config), 0.01);
  config.alpha = 0.9;
  double share_high = TopShare(ZipfDegreeSequence(config), 0.01);
  EXPECT_GT(share_high, share_low);
}

TEST(ZipfTest, TopShareFitMatchesClosedForm) {
  // Table 2 fit check: with alpha, top-q share ~ q^(1-alpha) (no caps binding).
  ZipfDegreeConfig config;
  config.num_vertices = 100000;
  config.avg_degree = 30;
  config.alpha = 0.845;  // the TW fit
  config.max_degree = 0;
  double share = TopShare(ZipfDegreeSequence(config), 0.01);
  EXPECT_NEAR(share, 0.49, 0.12);  // paper: 49.1% of edges in the top 1%
}

TEST(TopShareTest, Basics) {
  std::vector<Degree> degrees{10, 5, 3, 2};
  EXPECT_DOUBLE_EQ(TopShare(degrees, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(TopShare(degrees, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(TopShare({}, 0.5), 0.0);
}

}  // namespace
}  // namespace fm
