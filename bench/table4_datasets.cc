// Table 4: graphs used in the evaluation.
//
// Prints the paper's dataset inventory next to the generated stand-ins (DESIGN.md
// §3 documents the substitution: degree-distribution-matched synthetic graphs,
// scaled by FM_SCALE).
#include "bench/bench_util.h"

int main() {
  using namespace fm;
  PrintHeader("Table 4: Graphs used (paper full-size vs generated stand-ins)");
  std::printf("%-5s %-12s | %12s %14s %9s | %10s %12s %9s %7s\n", "Name", "Graph",
              "paper |V|", "paper |E|", "paper CSR", "standin|V|", "standin|E|",
              "CSR", "avg deg");
  for (const DatasetSpec& spec : AllDatasets()) {
    CsrGraph g = LoadDataset(spec);
    std::printf("%-5s %-12s | %12llu %14llu %8.1fGB | %10u %12llu %9s %7.1f\n",
                spec.name.c_str(), spec.full_name.c_str(),
                static_cast<unsigned long long>(spec.paper_vertices),
                static_cast<unsigned long long>(spec.paper_edges),
                spec.paper_csr_gb, g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                HumanBytes(g.CsrBytes()).c_str(),
                static_cast<double>(g.num_edges()) / g.num_vertices());
  }
  std::printf("\nFM_SCALE=%g (set FM_SCALE to grow the stand-ins)\n",
              EnvDouble("FM_SCALE", 1.0));
  return 0;
}
