// Figure 8: overall walk speed, FlashMob vs KnightKing vs GraphVite.
//
// (a) DeepWalk per-step time on the five stand-ins. Paper: KnightKing 2.2-3.8x
//     faster than GraphVite; FlashMob 5.4-13.7x faster than KnightKing.
// (b) node2vec per-step time, FlashMob vs KnightKing (GraphVite omitted as in the
//     paper). Paper: 3.9-19.9x speedup, smaller than DeepWalk's because the
//     second-order connectivity checks break VP locality.
#include "bench/bench_util.h"

namespace fm {
namespace {

struct Row {
  std::string graph;
  double flashmob = 0;
  double flashmob_counts = 0;  // with streaming sharded visit counting on
  double knightking = 0;
  double graphvite = 0;
};

Row RunOne(const DatasetSpec& spec, WalkAlgorithm algorithm, bool with_graphvite,
           const char* series, BenchTrajectory* traj) {
  CsrGraph g = LoadDataset(spec);
  Row row;
  row.graph = spec.name;

  WalkSpec walk = PerfSpec(g, algorithm);
  if (algorithm == WalkAlgorithm::kNode2Vec) {
    // node2vec steps are ~5x costlier; halve the walker rounds to keep the whole
    // suite CI-friendly (per-step times are walker-count invariant here).
    walk.num_walkers = std::max<Wid>(walk.num_walkers / 2, g.num_vertices());
  }
  auto spec_for = [&](const CsrGraph&) { return walk; };

  EngineOptions fm_options = PerfEngineOptions();
  fm_options.collect_counters = traj != nullptr;
  FlashMobEngine fmob(g, fm_options);
  WalkResult fm_run = fmob.Run(spec_for(g));
  row.flashmob = fm_run.stats.PerStepNs();
  if (traj != nullptr) {
    traj->set_backend(fm_run.stats.perf_backend);
    traj->AddCounters(std::string(series) + "/flashmob/" + row.graph,
                      fm_run.stats.counters.Total());
  }

  // Same walk with the streaming sharded visit counter on: the counting rides
  // inside the parallel placement/sample stages (merged once per episode), so
  // the gap to the counts-off column is the full price of visit statistics.
  EngineOptions counting_options = PerfEngineOptions();
  counting_options.count_visits = true;
  FlashMobEngine fmob_counts(g, counting_options);
  row.flashmob_counts = fmob_counts.Run(spec_for(g)).stats.PerStepNs();

  BaselineOptions base_options;
  base_options.count_visits = false;
  KnightKingEngine knk(g, base_options);
  row.knightking = knk.Run(spec_for(g)).stats.PerStepNs();

  if (with_graphvite) {
    GraphViteEngine gv(g, base_options);
    row.graphvite = gv.Run(spec_for(g)).stats.PerStepNs();
  }
  if (traj != nullptr) {
    traj->Add(std::string(series) + "/flashmob", row.graph, row.flashmob,
              "ns/step");
    traj->Add(std::string(series) + "/flashmob_counts", row.graph,
              row.flashmob_counts, "ns/step");
    traj->Add(std::string(series) + "/knightking", row.graph, row.knightking,
              "ns/step");
    if (with_graphvite) {
      traj->Add(std::string(series) + "/graphvite", row.graph, row.graphvite,
                "ns/step");
    }
  }
  return row;
}

void PrintRows(const std::vector<Row>& rows, bool with_graphvite) {
  std::printf("%-5s %12s %12s %12s", "graph", "FlashMob", "FM+counts",
              "KnightKing");
  if (with_graphvite) {
    std::printf(" %12s", "GraphVite");
  }
  std::printf(" %10s\n", "speedup");
  for (const Row& row : rows) {
    std::printf("%-5s %9.1f ns %9.1f ns %9.1f ns", row.graph.c_str(),
                row.flashmob, row.flashmob_counts, row.knightking);
    if (with_graphvite) {
      std::printf(" %9.1f ns", row.graphvite);
    }
    std::printf(" %9.1fx\n", row.knightking / row.flashmob);
  }
}

}  // namespace
}  // namespace fm

int main(int argc, char** argv) {
  using namespace fm;
  BenchArgs args = ParseBenchArgs(argc, argv);
  MaybeStartTrace(args);
  auto telemetry_writer = MakeBenchTelemetryWriter(args);
  BenchTrajectory traj("fig8_overall");
  BenchTrajectory* tp = args.metrics_path.empty() ? nullptr : &traj;
  PrintHeader("Figure 8a: DeepWalk per-step time");
  std::vector<Row> deepwalk;
  for (const DatasetSpec& spec : AllDatasets()) {
    deepwalk.push_back(RunOne(spec, WalkAlgorithm::kDeepWalk, true, "fig8a", tp));
  }
  PrintRows(deepwalk, true);
  std::printf("\npaper: FlashMob 21.5-36.7 ns/step; 5.4-13.7x over KnightKing; "
              "KnightKing 2.2-3.8x over GraphVite\n");

  PrintHeader("Figure 8b: node2vec per-step time (p=2, q=0.5)");
  std::vector<Row> node2vec;
  for (const DatasetSpec& spec : AllDatasets()) {
    node2vec.push_back(
        RunOne(spec, WalkAlgorithm::kNode2Vec, false, "fig8b", tp));
  }
  PrintRows(node2vec, false);
  std::printf("\npaper: 3.9-19.9x speedup over KnightKing (lower than DeepWalk "
              "due to cross-VP connectivity checks)\n");
  MaybeWriteTrajectory(traj, args.metrics_path);
  MaybeWriteTrace(args);
  return 0;
}
