// Figure 10: the DP-identified partitioning solutions.
//
// For each graph: (a) the VP size / sampling policy decisions along the sorted
// vertex array (summarized per group), and (b) the share of walker-steps served by
// each (cache-level, policy) combination — the paper's weighting that shows L2-sized
// PS partitions absorbing most traffic.
#include "bench/bench_util.h"

int main() {
  using namespace fm;
  const CostModel& model = BenchCostModel();
  PartitionPlan::Config config;
  config.cache = DetectCacheInfo();
  config.threads_sharing_l3 = ThreadPool::Global().thread_count();

  for (const DatasetSpec& spec : AllDatasets()) {
    CsrGraph g = LoadDataset(spec);
    Wid walkers = static_cast<Wid>(BenchRounds()) * g.num_vertices();
    PartitionPlan plan = PartitionPlan::BuildOptimized(g, walkers, model, config);

    PrintHeader("Figure 10 (" + spec.name + "): DP-identified solution");
    std::printf("%s", plan.Describe().c_str());

    // Walker-step share by (cache level, policy): run a short walk and accumulate.
    FlashMobEngine engine(g, PerfEngineOptions());
    engine.SetPlan(plan);
    WalkResult result = engine.Run(PerfSpec(g));
    const PartitionPlan& used = engine.plan();

    double share[5][2] = {};
    uint64_t total = 0;
    for (uint32_t i = 0; i < used.num_vps(); ++i) {
      const VertexPartition& vp = used.vp(i);
      uint64_t steps = result.stats.vp_walker_steps[i];
      share[vp.cache_level][vp.policy == SamplePolicy::kPS ? 0 : 1] +=
          static_cast<double>(steps);
      total += steps;
    }
    std::printf("walker-step share by (working-set level, policy):\n");
    const char* level_names[5] = {"?", "L1", "L2", "L3", "DRAM"};
    for (int level = 1; level <= 4; ++level) {
      for (int p = 0; p < 2; ++p) {
        if (share[level][p] > 0) {
          std::printf("  %-4s-%s: %5.1f%%\n", level_names[level],
                      p == 0 ? "PS" : "DS", share[level][p] / total * 100);
        }
      }
    }
  }
  std::printf(
      "\npaper shape: hubs get small (mostly L2-size) PS partitions that absorb "
      "most walker-steps;\nthe low-degree tail gets large DS partitions; L3-sized "
      "VPs are rare (exclusive-LLC effect).\n");
  return 0;
}
