// Figure 1: performance highlight.
//
// (a) Per-step DeepWalk time: KnightKing on toy graphs sized into L1/L2/L3, then on
//     the YT and YH stand-ins; FlashMob on YT and YH. The paper's claim: FlashMob on
//     the biggest graph matches KnightKing's speed on an L2-resident toy graph.
// (b) Per-step cache-miss breakdown (software cache simulator standing in for perf;
//     see DESIGN.md §3) for both engines on YT and YH.
#include "bench/bench_util.h"

namespace fm {
namespace {

// Toy graphs have only hundreds of vertices; pad the walker count so every
// measurement covers enough walker-steps for a stable clock reading.
WalkSpec PaddedSpec(const CsrGraph& g) {
  WalkSpec spec = PerfSpec(g);
  uint64_t min_steps = static_cast<uint64_t>(EnvInt64("FM_FIG1_MIN_STEPS", 8 << 20));
  spec.num_walkers = std::max<Wid>(spec.num_walkers, min_steps / spec.steps);
  return spec;
}

double KnightKingPerStep(const CsrGraph& g, const char* point,
                         BenchTrajectory* traj) {
  BaselineOptions options;
  options.count_visits = false;
  KnightKingEngine engine(g, options);
  double ns = engine.Run(PaddedSpec(g)).stats.PerStepNs();
  if (traj != nullptr) {
    traj->Add("fig1a/knightking", point, ns, "ns/step");
  }
  return ns;
}

double FlashMobPerStep(const CsrGraph& g, const char* point,
                       BenchTrajectory* traj) {
  EngineOptions options = PerfEngineOptions();
  options.collect_counters = traj != nullptr;
  FlashMobEngine engine(g, options);
  WalkResult result = engine.Run(PaddedSpec(g));
  if (traj != nullptr) {
    traj->set_backend(result.stats.perf_backend);
    traj->Add("fig1a/flashmob", point, result.stats.PerStepNs(), "ns/step");
    traj->AddCounters(std::string("fig1a/flashmob/") + point,
                      result.stats.counters.Total());
  }
  return result.stats.PerStepNs();
}

void MissBreakdown(const char* name, const CsrGraph& g, BenchTrajectory* traj) {
  WalkSpec spec;
  spec.steps = static_cast<uint32_t>(EnvInt64("FM_FIG1_SIM_STEPS", 6));
  spec.num_walkers = g.num_vertices();  // paper density: |V| walkers per episode
  spec.keep_paths = false;

  CacheHierarchy knk_sim;  // paper cache geometry
  BaselineOptions base_options;
  base_options.count_visits = false;
  KnightKingEngine knk(g, base_options);
  WalkResult knk_run = knk.RunInstrumented(spec, &knk_sim);

  CacheHierarchy fm_sim;
  EngineOptions options = PerfEngineOptions();
  FlashMobEngine fmob(g, options);
  WalkResult fm_run = fmob.RunInstrumented(spec, &fm_sim);

  auto print = [&](const char* engine, const char* series,
                   const CacheCounters& c, uint64_t steps) {
    std::printf("  %-10s %-4s  L1=%7.2f  L2=%6.3f  L3=%6.3f  (misses/step)\n",
                engine, name, static_cast<double>(c.misses[0]) / steps,
                static_cast<double>(c.misses[1]) / steps,
                static_cast<double>(c.misses[2]) / steps);
    if (traj != nullptr) {
      const char* levels[3] = {"L1", "L2", "L3"};
      for (int l = 0; l < 3; ++l) {
        traj->Add(series, std::string(name) + "/" + levels[l],
                  static_cast<double>(c.misses[l]) / steps,
                  "sim-misses/step");
      }
    }
  };
  print("KnightKing", "fig1b/knightking", knk_sim.counters(),
        knk_run.stats.total_steps);
  print("FlashMob", "fig1b/flashmob", fm_sim.counters(),
        fm_run.stats.total_steps);
}

}  // namespace
}  // namespace fm

int main(int argc, char** argv) {
  using namespace fm;
  BenchArgs args = ParseBenchArgs(argc, argv);
  MaybeStartTrace(args);
  BenchTrajectory traj("fig1_highlight");
  BenchTrajectory* tp = args.metrics_path.empty() ? nullptr : &traj;
  PrintHeader("Figure 1a: per-step time highlight (DeepWalk)");

  const CacheInfo& info = DetectCacheInfo();
  struct Toy {
    const char* name;
    uint64_t budget;
  } toys[] = {{"toy-L1", info.l1_bytes}, {"toy-L2", info.l2_bytes},
              {"toy-L3", info.l3_bytes}};
  for (const Toy& toy : toys) {
    CsrGraph g = GenerateCacheSizedGraph(toy.budget * 9 / 10, 16, 42);
    std::printf("  KnightKing  %-7s (%7s CSR): %8.1f ns/step\n", toy.name,
                HumanBytes(g.CsrBytes()).c_str(),
                KnightKingPerStep(g, toy.name, tp));
  }
  CsrGraph yt = LoadDataset(DatasetByName("YT"));
  CsrGraph yh = LoadDataset(DatasetByName("YH"));
  std::printf("  KnightKing  %-7s (%7s CSR): %8.1f ns/step\n", "YT",
              HumanBytes(yt.CsrBytes()).c_str(), KnightKingPerStep(yt, "YT", tp));
  std::printf("  KnightKing  %-7s (%7s CSR): %8.1f ns/step\n", "YH",
              HumanBytes(yh.CsrBytes()).c_str(), KnightKingPerStep(yh, "YH", tp));
  std::printf("  FlashMob    %-7s (%7s CSR): %8.1f ns/step\n", "YT",
              HumanBytes(yt.CsrBytes()).c_str(), FlashMobPerStep(yt, "YT", tp));
  std::printf("  FlashMob    %-7s (%7s CSR): %8.1f ns/step\n", "YH",
              HumanBytes(yh.CsrBytes()).c_str(), FlashMobPerStep(yh, "YH", tp));
  std::printf(
      "\npaper: FlashMob on the 58GB YH graph ~= KnightKing on a 600KB (L2) toy\n");

  PrintHeader("Figure 1b: per-step cache misses (simulated, paper geometry)");
  MissBreakdown("YT", yt, tp);
  MissBreakdown("YH", yh, tp);
  std::printf(
      "\npaper shape: FlashMob cuts L2/L3 misses sharply; KnightKing's L1 misses "
      "fall straight through to DRAM\n");
  MaybeWriteTrajectory(traj, args.metrics_path);
  MaybeWriteTrace(args);
  return 0;
}
