// Figure 1: performance highlight.
//
// (a) Per-step DeepWalk time: KnightKing on toy graphs sized into L1/L2/L3, then on
//     the YT and YH stand-ins; FlashMob on YT and YH. The paper's claim: FlashMob on
//     the biggest graph matches KnightKing's speed on an L2-resident toy graph.
//     With FM_SHUFFLE=auto (default) the FlashMob rows also run once per shuffle
//     backend (fig1a/flashmob-direct, fig1a/flashmob-binned) so the trajectory
//     tracks the propagation-blocking crossover honestly — including configs
//     where the direct path wins because the walker array is LLC-resident.
// (b) Per-step cache-miss breakdown (software cache simulator standing in for perf;
//     see DESIGN.md §3) for both engines on YT and YH, plus the shuffle-stage
//     attribution per backend (fig1b/flashmob/shuffle-*). FM_FIG1_SIM_WALKERS
//     overrides the instrumented walker count — set it above ~5.2M so the
//     walker array exceeds the simulated 19.75MB LLC, the regime binned
//     shuffling targets.
#include "bench/bench_util.h"

namespace fm {
namespace {

// Toy graphs have only hundreds of vertices; pad the walker count so every
// measurement covers enough walker-steps for a stable clock reading.
WalkSpec PaddedSpec(const CsrGraph& g) {
  WalkSpec spec = PerfSpec(g);
  uint64_t min_steps = static_cast<uint64_t>(EnvInt64("FM_FIG1_MIN_STEPS", 8 << 20));
  spec.num_walkers = std::max<Wid>(spec.num_walkers, min_steps / spec.steps);
  return spec;
}

double KnightKingPerStep(const CsrGraph& g, const char* point,
                         BenchTrajectory* traj) {
  BaselineOptions options;
  options.count_visits = false;
  KnightKingEngine engine(g, options);
  double ns = engine.Run(PaddedSpec(g)).stats.PerStepNs();
  if (traj != nullptr) {
    traj->Add("fig1a/knightking", point, ns, "ns/step");
  }
  return ns;
}

struct FlashMobRun {
  double ns = 0;          // whole-pipeline ns/step
  double shuffle_ns = 0;  // scatter + gather ns/step
  std::string backend;    // concrete backend that ran
};

FlashMobRun FlashMobPerStep(const CsrGraph& g, const char* point,
                            BenchTrajectory* traj, const char* series,
                            ShuffleBackendKind backend) {
  EngineOptions options = PerfEngineOptions();
  options.shuffle_backend = backend;
  options.collect_counters = traj != nullptr;
  FlashMobEngine engine(g, options);
  WalkResult result = engine.Run(PaddedSpec(g));
  const WalkStats& stats = result.stats;
  FlashMobRun run;
  run.ns = stats.PerStepNs();
  run.shuffle_ns = stats.total_steps == 0
                       ? 0
                       : stats.times.shuffle_s * 1e9 /
                             static_cast<double>(stats.total_steps);
  run.backend = stats.shuffle_backend;
  if (traj != nullptr) {
    traj->set_backend(stats.perf_backend);
    traj->Add(series, point, run.ns, "ns/step");
    const std::string shuffle_series = std::string(series) + "/shuffle";
    traj->Add(shuffle_series, point, run.shuffle_ns, "ns/step");
    traj->AddCounters(std::string(series) + "/" + point,
                      stats.counters.Total());
    CounterSample shuffle_counters = stats.counters.scatter;
    shuffle_counters += stats.counters.gather;
    traj->AddCounters(shuffle_series + "/" + point, shuffle_counters);
  }
  return run;
}

// Interleave depth sweep (fig1c series): both engines at ring depths
// {1,4,8,16} plus "auto", on one dataset. The FlashMob rows carry hardware
// counter samples (IPC / LLC-misses-per-step deltas when the perf backend is
// live); the printout flags the auto model's pick against the measured
// winner, mirroring the shuffle duet's honesty contract.
void InterleaveSweep(const CsrGraph& g, const char* point,
                     BenchTrajectory* traj) {
  const InterleavePlan auto_plan =
      BuildInterleavePlan(kInterleaveDepthAuto, DetectCacheInfo());
  std::printf("\n  interleave depth sweep on %s (%s):\n", point,
              auto_plan.Describe().c_str());
  struct Row {
    const char* label;
    uint32_t depth;  // kInterleaveDepthAuto = resolve from cache geometry
  } rows[] = {{"d1", 1}, {"d4", 4}, {"d8", 8}, {"d16", 16},
              {"auto", kInterleaveDepthAuto}};
  double best_ns = 0;
  uint32_t best_depth = 0;
  for (const Row& row : rows) {
    EngineOptions options = PerfEngineOptions();
    options.interleave_depth = row.depth;
    options.collect_counters = traj != nullptr;
    FlashMobEngine engine(g, options);
    WalkResult result = engine.Run(PaddedSpec(g));
    const double fm_ns = result.stats.PerStepNs();
    const uint32_t resolved = result.stats.interleave_depth;

    BaselineOptions base;
    base.count_visits = false;
    base.use_mersenne = false;  // the per-walker-stream path the ring needs
    base.interleave_depth = row.depth == kInterleaveDepthAuto
                                ? auto_plan.depth
                                : row.depth;
    KnightKingEngine knk(g, base);
    const double knk_ns = knk.Run(PaddedSpec(g)).stats.PerStepNs();

    std::printf("    %-5s (depth %2u)  flashmob=%8.1f  knightking=%8.1f "
                "ns/step\n",
                row.label, resolved, fm_ns, knk_ns);
    if (traj != nullptr) {
      const std::string pt = std::string(point) + "/" + row.label;
      traj->Add("fig1c/flashmob-interleave", pt, fm_ns, "ns/step");
      traj->Add("fig1c/knightking-interleave", pt, knk_ns, "ns/step");
      traj->AddCounters("fig1c/flashmob-interleave/" + pt,
                        result.stats.counters.Total());
    }
    // Winner over the pinned depths only; the auto row re-measures one of
    // them and would double-count timing noise.
    if (row.depth != kInterleaveDepthAuto &&
        (best_depth == 0 || fm_ns < best_ns)) {
      best_ns = fm_ns;
      best_depth = row.depth;
    }
  }
  std::printf("    plan pick: depth %u, measured winner: depth %u%s\n",
              auto_plan.depth, best_depth,
              auto_plan.depth == best_depth
                  ? ""
                  : "  [auto missed the measured winner on this config]");
  if (traj != nullptr) {
    traj->Add("fig1c/plan", std::string(point) + "/picked",
              static_cast<double>(auto_plan.depth), "depth");
    traj->Add("fig1c/plan", std::string(point) + "/winner",
              static_cast<double>(best_depth), "depth");
  }
}

void MissBreakdown(const char* name, const CsrGraph& g, BenchTrajectory* traj) {
  WalkSpec spec;
  spec.steps = static_cast<uint32_t>(EnvInt64("FM_FIG1_SIM_STEPS", 6));
  // Paper density: |V| walkers per episode. FM_FIG1_SIM_WALKERS overrides so
  // the walker array can be pushed past the simulated LLC.
  const uint64_t sim_walkers =
      static_cast<uint64_t>(EnvInt64("FM_FIG1_SIM_WALKERS", 0));
  spec.num_walkers =
      sim_walkers != 0 ? static_cast<Wid>(sim_walkers) : g.num_vertices();
  spec.keep_paths = false;

  CacheHierarchy knk_sim;  // paper cache geometry
  BaselineOptions base_options;
  base_options.count_visits = false;
  KnightKingEngine knk(g, base_options);
  WalkResult knk_run = knk.RunInstrumented(spec, &knk_sim);

  CacheHierarchy fm_sim;
  EngineOptions options = PerfEngineOptions();
  FlashMobEngine fmob(g, options);
  WalkResult fm_run = fmob.RunInstrumented(spec, &fm_sim);

  auto print = [&](const char* engine, const char* series,
                   const CacheCounters& c, uint64_t steps) {
    std::printf("  %-10s %-4s  L1=%7.2f  L2=%6.3f  L3=%6.3f  (misses/step)\n",
                engine, name, static_cast<double>(c.misses[0]) / steps,
                static_cast<double>(c.misses[1]) / steps,
                static_cast<double>(c.misses[2]) / steps);
    if (traj != nullptr) {
      const char* levels[3] = {"L1", "L2", "L3"};
      for (int l = 0; l < 3; ++l) {
        traj->Add(series, std::string(name) + "/" + levels[l],
                  static_cast<double>(c.misses[l]) / steps,
                  "sim-misses/step");
      }
    }
  };
  print("KnightKing", "fig1b/knightking", knk_sim.counters(),
        knk_run.stats.total_steps);
  print("FlashMob", "fig1b/flashmob", fm_sim.counters(),
        fm_run.stats.total_steps);

  // Shuffle-stage attribution per backend: each backend replays its real
  // access pattern through the simulator (WalkStats::sim_shuffle), so the two
  // runs are directly comparable. fm_run already covered one backend; run the
  // other.
  EngineOptions other_options = PerfEngineOptions();
  other_options.shuffle_backend = fm_run.stats.shuffle_backend == "direct"
                                      ? ShuffleBackendKind::kBinned
                                      : ShuffleBackendKind::kDirect;
  CacheHierarchy other_sim;
  FlashMobEngine other_engine(g, other_options);
  WalkResult other_run = other_engine.RunInstrumented(spec, &other_sim);

  auto shuffle_print = [&](const WalkResult& run) {
    const CacheCounters& c = run.stats.sim_shuffle;
    const uint64_t steps =
        run.stats.total_steps == 0 ? 1 : run.stats.total_steps;
    std::printf(
        "  FlashMob shuffle [%-6s] %-4s  L1=%7.2f  L2=%6.3f  L3=%6.3f  "
        "(misses/step)\n",
        run.stats.shuffle_backend.c_str(), name,
        static_cast<double>(c.misses[0]) / steps,
        static_cast<double>(c.misses[1]) / steps,
        static_cast<double>(c.misses[2]) / steps);
    if (traj != nullptr) {
      const char* levels[3] = {"L1", "L2", "L3"};
      for (int l = 0; l < 3; ++l) {
        traj->Add("fig1b/flashmob/shuffle-" + run.stats.shuffle_backend,
                  std::string(name) + "/" + levels[l],
                  static_cast<double>(c.misses[l]) / steps,
                  "sim-misses/step");
      }
    }
  };
  shuffle_print(fm_run);
  shuffle_print(other_run);

  const WalkResult& direct_run =
      fm_run.stats.shuffle_backend == "direct" ? fm_run : other_run;
  const WalkResult& binned_run =
      fm_run.stats.shuffle_backend == "direct" ? other_run : fm_run;
  const uint64_t steps =
      fm_run.stats.total_steps == 0 ? 1 : fm_run.stats.total_steps;
  const double direct_llc =
      static_cast<double>(direct_run.stats.sim_shuffle.misses[2]) / steps;
  const double binned_llc =
      static_cast<double>(binned_run.stats.sim_shuffle.misses[2]) / steps;
  const uint64_t walker_bytes =
      static_cast<uint64_t>(spec.num_walkers) * sizeof(Vid);
  std::printf(
      "  shuffle LLC misses/step: direct=%.3f binned=%.3f -> %s wins "
      "(walker array %s %s the sim LLC; engine's pick: %s)\n",
      direct_llc, binned_llc, binned_llc < direct_llc ? "binned" : "direct",
      HumanBytes(walker_bytes).c_str(),
      walker_bytes > PaperCacheInfo().l3_bytes ? "exceeds" : "fits in",
      fm_run.stats.shuffle_backend.c_str());
}

}  // namespace
}  // namespace fm

int main(int argc, char** argv) {
  using namespace fm;
  BenchArgs args = ParseBenchArgs(argc, argv);
  MaybeStartTrace(args);
  auto telemetry_writer = MakeBenchTelemetryWriter(args);
  BenchTrajectory traj("fig1_highlight");
  BenchTrajectory* tp = args.metrics_path.empty() ? nullptr : &traj;
  PrintHeader("Figure 1a: per-step time highlight (DeepWalk)");

  const CacheInfo& info = DetectCacheInfo();
  struct Toy {
    const char* name;
    uint64_t budget;
  } toys[] = {{"toy-L1", info.l1_bytes}, {"toy-L2", info.l2_bytes},
              {"toy-L3", info.l3_bytes}};
  for (const Toy& toy : toys) {
    CsrGraph g = GenerateCacheSizedGraph(toy.budget * 9 / 10, 16, 42);
    std::printf("  KnightKing  %-7s (%7s CSR): %8.1f ns/step\n", toy.name,
                HumanBytes(g.CsrBytes()).c_str(),
                KnightKingPerStep(g, toy.name, tp));
  }
  CsrGraph yt = LoadDataset(DatasetByName("YT"));
  CsrGraph yh = LoadDataset(DatasetByName("YH"));
  std::printf("  KnightKing  %-7s (%7s CSR): %8.1f ns/step\n", "YT",
              HumanBytes(yt.CsrBytes()).c_str(), KnightKingPerStep(yt, "YT", tp));
  std::printf("  KnightKing  %-7s (%7s CSR): %8.1f ns/step\n", "YH",
              HumanBytes(yh.CsrBytes()).c_str(), KnightKingPerStep(yh, "YH", tp));
  FlashMobRun yt_run =
      FlashMobPerStep(yt, "YT", tp, "fig1a/flashmob", BenchShuffleBackend());
  std::printf("  FlashMob    %-7s (%7s CSR): %8.1f ns/step  [shuffle=%s]\n",
              "YT", HumanBytes(yt.CsrBytes()).c_str(), yt_run.ns,
              yt_run.backend.c_str());
  FlashMobRun yh_run =
      FlashMobPerStep(yh, "YH", tp, "fig1a/flashmob", BenchShuffleBackend());
  std::printf("  FlashMob    %-7s (%7s CSR): %8.1f ns/step  [shuffle=%s]\n",
              "YH", HumanBytes(yh.CsrBytes()).c_str(), yh_run.ns,
              yh_run.backend.c_str());
  std::printf(
      "\npaper: FlashMob on the 58GB YH graph ~= KnightKing on a 600KB (L2) toy\n");

  // Backend duet: both shuffle paths on each dataset, flagging where the
  // direct path wins (expected whenever the walker array stays LLC-resident —
  // binned pays an extra pass over the record arena). Skipped when FM_SHUFFLE
  // pins a backend: the pin means "measure exactly this one".
  if (EnvString("FM_SHUFFLE", "auto") == "auto") {
    std::printf("\n  shuffle backend duet (scatter+gather ns/step):\n");
    struct Duet {
      const char* name;
      const CsrGraph* graph;
      const FlashMobRun* auto_run;
    } duets[] = {{"YT", &yt, &yt_run}, {"YH", &yh, &yh_run}};
    for (const Duet& d : duets) {
      FlashMobRun direct = FlashMobPerStep(*d.graph, d.name, tp,
                                           "fig1a/flashmob-direct",
                                           ShuffleBackendKind::kDirect);
      FlashMobRun binned = FlashMobPerStep(*d.graph, d.name, tp,
                                           "fig1a/flashmob-binned",
                                           ShuffleBackendKind::kBinned);
      const char* winner =
          binned.shuffle_ns < direct.shuffle_ns ? "binned" : "direct";
      std::printf("    %-4s direct=%8.1f  binned=%8.1f  winner=%-6s  auto "
                  "picked %s%s\n",
                  d.name, direct.shuffle_ns, binned.shuffle_ns, winner,
                  d.auto_run->backend.c_str(),
                  d.auto_run->backend == winner
                      ? ""
                      : "  [auto missed the measured winner on this config]");
    }
  }

  PrintHeader("Figure 1c: step-interleaving depth sweep (DeepWalk)");
  InterleaveSweep(yt, "YT", tp);

  PrintHeader("Figure 1b: per-step cache misses (simulated, paper geometry)");
  MissBreakdown("YT", yt, tp);
  MissBreakdown("YH", yh, tp);
  std::printf(
      "\npaper shape: FlashMob cuts L2/L3 misses sharply; KnightKing's L1 misses "
      "fall straight through to DRAM\n");
  MaybeWriteTrajectory(traj, args.metrics_path);
  MaybeWriteTrace(args);
  return 0;
}
