// Table 5: memory hierarchy profiling case studies (FS and UK).
//
// Reruns the paper's perf/VTune case study on the software cache simulator
// (DESIGN.md §3): per-step hits/misses at each level, time bound on each level
// (miss counts x the Table 1 latency ladder), total data-bound share, and DRAM
// traffic per step, for KnightKing vs FlashMob on the FS and UK stand-ins.
#include "bench/bench_util.h"

namespace fm {
namespace {

struct Profile {
  CacheCounters counters;
  uint64_t steps = 0;
  double wall_ns_per_step = 0;
};

void PrintColumn(const char* name, const Profile& p) {
  LatencyModel lat;
  double steps = static_cast<double>(p.steps);
  std::printf("---- %s ----\n", name);
  std::printf("  L1-hit|miss /step: %7.2f | %5.2f\n",
              p.counters.hits[0] / steps, p.counters.misses[0] / steps);
  std::printf("  L2-hit|miss /step: %7.2f | %5.2f\n",
              p.counters.hits[1] / steps, p.counters.misses[1] / steps);
  std::printf("  L3-hit|miss /step: %7.2f | %5.2f\n",
              p.counters.hits[2] / steps, p.counters.misses[2] / steps);
  double bound[4];
  double total_bound = 0;
  for (int level = 0; level < 4; ++level) {
    bound[level] = lat.BoundNs(p.counters, level) / steps;
    total_bound += bound[level];
  }
  const char* names[4] = {"L1", "L2", "L3", "DRAM"};
  for (int level = 0; level < 4; ++level) {
    std::printf("  %4s-bound: %8.2f ns/step (%4.1f%% of data-bound)\n",
                names[level], bound[level],
                total_bound > 0 ? bound[level] / total_bound * 100 : 0.0);
  }
  std::printf("  total data-bound: %.2f ns/step\n", total_bound);
  double traffic = static_cast<double>(p.counters.DramBytes()) / steps;
  std::printf("  DRAM traffic/step: %.1f B\n", traffic);
  if (p.wall_ns_per_step > 0) {
    std::printf("  est. DRAM bandwidth at measured speed: %.1f GB/s\n",
                traffic / p.wall_ns_per_step);
  }
}

}  // namespace
}  // namespace fm

int main() {
  using namespace fm;
  PrintHeader("Table 5: memory hierarchy profiling (simulated, paper geometry)");
  for (const char* name : {"FS", "UK"}) {
    CsrGraph g = LoadDataset(DatasetByName(name));
    WalkSpec spec;
    spec.steps = static_cast<uint32_t>(EnvInt64("FM_T5_STEPS", 8));
    // Density matters: the paper profiles at |V| walkers per episode; starving the
    // engine of walkers would charge whole-VP streaming and PS refills to a
    // handful of steps.
    Wid walkers = static_cast<Wid>(EnvInt64("FM_T5_WALKERS", 0));
    spec.num_walkers = walkers != 0 ? walkers : g.num_vertices();
    spec.keep_paths = false;

    // Wall-clock speed measured un-instrumented at the same workload.
    BaselineOptions base_options;
    base_options.count_visits = false;
    KnightKingEngine knk(g, base_options);
    Profile knk_profile;
    knk_profile.wall_ns_per_step = knk.Run(PerfSpec(g)).stats.PerStepNs();
    CacheHierarchy knk_sim;
    WalkResult knk_run = knk.RunInstrumented(spec, &knk_sim);
    knk_profile.counters = knk_sim.counters();
    knk_profile.steps = knk_run.stats.total_steps;

    FlashMobEngine fmob(g, PerfEngineOptions());
    Profile fm_profile;
    fm_profile.wall_ns_per_step = fmob.Run(PerfSpec(g)).stats.PerStepNs();
    CacheHierarchy fm_sim;
    WalkResult fm_run = fmob.RunInstrumented(spec, &fm_sim);
    fm_profile.counters = fm_sim.counters();
    fm_profile.steps = fm_run.stats.total_steps;

    std::printf("\n===== graph %s =====\n", name);
    PrintColumn((std::string("KnightKing-") + name).c_str(), knk_profile);
    PrintColumn((std::string("FlashMob-") + name).c_str(), fm_profile);
  }
  std::printf(
      "\npaper shape: FlashMob's L2 catches most L1 misses; KnightKing misses "
      "straight to DRAM;\nFlashMob cuts DRAM-bound time by >10x and (on FS) "
      "DRAM traffic/step by ~4x.\n");
  return 0;
}
