// Google-benchmark microbenchmarks for the core kernels: RNGs (the §5.2 xorshift*
// vs Mersenne Twister ablation), edge samplers, shuffle passes, and the PS/DS
// sample kernels on an L2-sized VP.
#include <benchmark/benchmark.h>

#include "src/core/presample.h"
#include "src/core/sample_stage.h"
#include "src/core/shuffle.h"
#include "src/gen/uniform_degree.h"
#include "src/sampling/alias_table.h"
#include "src/sampling/cdf_sampler.h"
#include "src/util/rng.h"

namespace fm {
namespace {

void BM_XorShiftRng(benchmark::State& state) {
  XorShiftRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_XorShiftRng);

void BM_MersenneRng(benchmark::State& state) {
  MersenneRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_MersenneRng);

void BM_AliasSample(benchmark::State& state) {
  std::vector<double> weights(state.range(0));
  XorShiftRng rng(2);
  for (auto& w : weights) {
    w = 1.0 + static_cast<double>(rng.NextBounded(100));
  }
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(16)->Arg(1024)->Arg(65536);

void BM_CdfSample(benchmark::State& state) {
  std::vector<double> weights(state.range(0));
  XorShiftRng rng(2);
  for (auto& w : weights) {
    w = 1.0 + static_cast<double>(rng.NextBounded(100));
  }
  CdfSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_CdfSample)->Arg(16)->Arg(1024)->Arg(65536);

void BM_SampleKernel(benchmark::State& state) {
  SamplePolicy policy = state.range(0) == 0 ? SamplePolicy::kPS : SamplePolicy::kDS;
  Vid vertices = 1 << 13;  // ~L2-sized working sets
  Degree degree = 16;
  CsrGraph g = GenerateUniformDegreeGraph(vertices, degree, 1, vertices);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, policy);
  PresampleBuffers buffers(g, plan);
  Wid walkers = vertices * degree;
  std::vector<Vid> sw(walkers);
  XorShiftRng init(1);
  for (auto& w : sw) {
    w = static_cast<Vid>(init.NextBounded(vertices));
  }
  XorShiftRng rng(2);
  NullMemHook hook;
  for (auto _ : state) {
    SampleVpFirstOrder(g, 0, plan.vp(0), &buffers, sw.data(), walkers, 0.0,
                       nullptr, rng, hook);
  }
  state.SetItemsProcessed(state.iterations() * walkers);
}
BENCHMARK(BM_SampleKernel)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ShuffleRoundTrip(benchmark::State& state) {
  Vid vertices = 1 << 16;
  CsrGraph g = GenerateUniformDegreeGraph(vertices, 4, 1);
  PartitionPlan plan =
      PartitionPlan::BuildUniform(g, static_cast<uint32_t>(state.range(0)),
                                  SamplePolicy::kDS);
  ThreadPool pool(0);
  Shuffler shuffler(&plan, &pool);
  Wid walkers = 1 << 20;
  std::vector<Vid> w(walkers), sw(walkers), w_next(walkers);
  XorShiftRng rng(3);
  for (auto& x : w) {
    x = static_cast<Vid>(rng.NextBounded(vertices));
  }
  for (auto _ : state) {
    shuffler.Scatter(w.data(), nullptr, walkers, sw.data(), nullptr);
    shuffler.Gather(w.data(), walkers, sw.data(), w_next.data(), nullptr, nullptr);
  }
  state.SetItemsProcessed(state.iterations() * walkers);
}
BENCHMARK(BM_ShuffleRoundTrip)->Arg(64)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fm

BENCHMARK_MAIN();
