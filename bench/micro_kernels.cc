// Google-benchmark microbenchmarks for the core kernels: RNGs (the §5.2 xorshift*
// vs Mersenne Twister ablation), edge samplers, shuffle passes, and the PS/DS
// sample kernels on an L2-sized VP.
//
// Besides the google-benchmark suite, the binary runs a direct-vs-binned
// shuffle sweep across walker counts straddling the LLC and prints the
// measured winner next to the ShufflePlan recommendation. --metrics-json=FILE
// writes the sweep as fm-bench-trajectory-v1 (flags peeled before
// benchmark::Initialize so the two argument grammars coexist).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/metrics.h"
#include "src/core/presample.h"
#include "src/core/sample_stage.h"
#include "src/core/shuffle.h"
#include "src/gen/uniform_degree.h"
#include "src/sampling/alias_table.h"
#include "src/sampling/cdf_sampler.h"
#include "src/util/cache_info.h"
#include "src/util/env.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace fm {
namespace {

void BM_XorShiftRng(benchmark::State& state) {
  XorShiftRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_XorShiftRng);

void BM_MersenneRng(benchmark::State& state) {
  MersenneRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_MersenneRng);

void BM_AliasSample(benchmark::State& state) {
  std::vector<double> weights(state.range(0));
  XorShiftRng rng(2);
  for (auto& w : weights) {
    w = 1.0 + static_cast<double>(rng.NextBounded(100));
  }
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(16)->Arg(1024)->Arg(65536);

void BM_CdfSample(benchmark::State& state) {
  std::vector<double> weights(state.range(0));
  XorShiftRng rng(2);
  for (auto& w : weights) {
    w = 1.0 + static_cast<double>(rng.NextBounded(100));
  }
  CdfSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_CdfSample)->Arg(16)->Arg(1024)->Arg(65536);

void BM_SampleKernel(benchmark::State& state) {
  SamplePolicy policy = state.range(0) == 0 ? SamplePolicy::kPS : SamplePolicy::kDS;
  Vid vertices = 1 << 13;  // ~L2-sized working sets
  Degree degree = 16;
  CsrGraph g = GenerateUniformDegreeGraph(vertices, degree, 1, vertices);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, policy);
  PresampleBuffers buffers(g, plan);
  Wid walkers = vertices * degree;
  std::vector<Vid> sw(walkers);
  XorShiftRng init(1);
  for (auto& w : sw) {
    w = static_cast<Vid>(init.NextBounded(vertices));
  }
  NullMemHook hook;
  uint64_t chunk_seed = 2;
  for (auto _ : state) {
    SampleVpFirstOrder(g, 0, plan.vp(0), &buffers, sw.data(), walkers, 0.0,
                       nullptr, chunk_seed++, hook);
  }
  state.SetItemsProcessed(state.iterations() * walkers);
}
BENCHMARK(BM_SampleKernel)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// range(0) = interleave depth. Same setup as BM_SampleKernel's DS leg, run
// through the ring executor — the depth sweep shows the fill-buffer knee.
void BM_SampleKernelInterleaved(benchmark::State& state) {
  const uint32_t depth = static_cast<uint32_t>(state.range(0));
  Vid vertices = 1 << 13;
  Degree degree = 16;
  CsrGraph g = GenerateUniformDegreeGraph(vertices, degree, 1, vertices);
  PartitionPlan plan = PartitionPlan::BuildUniform(g, 1, SamplePolicy::kDS);
  PresampleBuffers buffers(g, plan);
  Wid walkers = vertices * degree;
  std::vector<Vid> sw(walkers);
  XorShiftRng init(1);
  for (auto& w : sw) {
    w = static_cast<Vid>(init.NextBounded(vertices));
  }
  NullMemHook hook;
  uint64_t chunk_seed = 2;
  for (auto _ : state) {
    SampleVpFirstOrderInterleaved(g, 0, plan.vp(0), &buffers, sw.data(),
                                  walkers, 0.0, nullptr, chunk_seed++, depth,
                                  hook);
  }
  state.SetItemsProcessed(state.iterations() * walkers);
}
BENCHMARK(BM_SampleKernelInterleaved)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

// range(0) = partitions, range(1) = 0 direct / 1 binned.
void BM_ShuffleRoundTrip(benchmark::State& state) {
  Vid vertices = 1 << 16;
  CsrGraph g = GenerateUniformDegreeGraph(vertices, 4, 1);
  PartitionPlan plan =
      PartitionPlan::BuildUniform(g, static_cast<uint32_t>(state.range(0)),
                                  SamplePolicy::kDS);
  ThreadPool pool(0);
  Wid walkers = 1 << 20;
  ShufflePlan sp =
      BuildShufflePlan(plan, g, walkers, DetectCacheInfo(), pool.thread_count());
  ShuffleConfig config;
  config.kind = state.range(1) == 0 ? ShuffleBackendKind::kDirect
                                    : ShuffleBackendKind::kBinned;
  config.shuffle_plan = &sp;
  Shuffler shuffler(&plan, &pool, config);
  ShuffleArena arena;
  shuffler.AttachArena(&arena);
  std::vector<Vid> w(walkers), sw(walkers), w_next(walkers);
  XorShiftRng rng(3);
  for (auto& x : w) {
    x = static_cast<Vid>(rng.NextBounded(vertices));
  }
  for (auto _ : state) {
    shuffler.Scatter(w.data(), nullptr, walkers, sw.data(), nullptr);
    if (!shuffler
             .Gather(w.data(), walkers, sw.data(), w_next.data(), nullptr,
                     nullptr)
             .ok()) {
      state.SkipWithError("gather failed");
    }
  }
  state.SetItemsProcessed(state.iterations() * walkers);
}
BENCHMARK(BM_ShuffleRoundTrip)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({2048, 0})
    ->Args({2048, 1})
    ->Unit(benchmark::kMillisecond);

// --- direct-vs-binned sweep ---------------------------------------------------

struct SweepTiming {
  double scatter_ns = 0;     // per walker
  double round_trip_ns = 0;  // per walker
};

SweepTiming TimeBackend(const PartitionPlan& plan, ThreadPool* pool,
                        const ShufflePlan& sp, ShuffleBackendKind kind,
                        const std::vector<Vid>& w, std::vector<Vid>* sw,
                        std::vector<Vid>* w_next) {
  ShuffleConfig config;
  config.kind = kind;
  config.shuffle_plan = &sp;
  Shuffler shuffler(&plan, pool, config);
  ShuffleArena arena;
  shuffler.AttachArena(&arena);
  const Wid n = static_cast<Wid>(w.size());
  SweepTiming best;
  shuffler.Scatter(w.data(), nullptr, n, sw->data(), nullptr);  // warm-up
  const int kIters = 3;
  for (int it = 0; it < kIters; ++it) {
    Timer timer;
    shuffler.Scatter(w.data(), nullptr, n, sw->data(), nullptr);
    const double scatter_s = timer.Lap();
    const Status st = shuffler.Gather(w.data(), n, sw->data(), w_next->data(),
                                      nullptr, nullptr);
    FM_CHECK_MSG(st.ok(), st.message());
    const double total_s = scatter_s + timer.Lap();
    const double scatter_ns = scatter_s * 1e9 / static_cast<double>(n);
    const double total_ns = total_s * 1e9 / static_cast<double>(n);
    if (it == 0 || scatter_ns < best.scatter_ns) {
      best.scatter_ns = scatter_ns;
    }
    if (it == 0 || total_ns < best.round_trip_ns) {
      best.round_trip_ns = total_ns;
    }
  }
  return best;
}

// Direct vs binned at walker counts straddling the LLC (~5.2M Vids on the
// paper geometry), at a fan-out whose cursor table fits L2 and one that
// spills it. Prints the measured winner next to the ShufflePlan pick; both
// land in the trajectory under shuffle/{scatter,roundtrip}/{direct,binned}.
void RunShuffleSweep(BenchTrajectory* traj) {
  const double scale = EnvDouble("FM_SCALE", 1.0);
  const Vid vertices =
      std::max<Vid>(1 << 12, static_cast<Vid>((1 << 20) * scale));
  CsrGraph g = GenerateUniformDegreeGraph(vertices, 8, 7);
  ThreadPool pool(0);
  const CacheInfo& cache = DetectCacheInfo();
  std::printf("\nshuffle sweep: direct vs binned (ns/walker, best of 3; LLC=%s)\n",
              HumanBytes(cache.l3_bytes).c_str());
  std::printf("  %-22s %10s | scatter %8s %8s | roundtrip %8s %8s | %s\n",
              "config", "walkers", "direct", "binned", "direct", "binned",
              "winner vs plan pick");
  for (uint32_t partitions : {2048u, 8192u}) {
    PartitionPlan plan =
        PartitionPlan::BuildUniform(g, partitions, SamplePolicy::kDS);
    for (uint64_t base : {1ull << 21, 1ull << 23, 1ull << 24}) {
      const Wid n = std::max<Wid>(1 << 14, static_cast<Wid>(base * scale));
      std::vector<Vid> w(n), sw(n), w_next(n);
      XorShiftRng rng(11);
      for (auto& x : w) {
        x = static_cast<Vid>(rng.NextBounded(g.num_vertices()));
      }
      ShufflePlan sp = BuildShufflePlan(plan, g, n, cache, pool.thread_count());
      SweepTiming direct = TimeBackend(plan, &pool, sp,
                                       ShuffleBackendKind::kDirect, w, &sw,
                                       &w_next);
      SweepTiming binned = TimeBackend(plan, &pool, sp,
                                       ShuffleBackendKind::kBinned, w, &sw,
                                       &w_next);
      const char* winner =
          binned.round_trip_ns < direct.round_trip_ns ? "binned" : "direct";
      const char* pick = ShuffleBackendName(sp.recommended);
      char config[64];
      std::snprintf(config, sizeof(config), "vps=%u bins=%u", plan.num_vps(),
                    sp.num_bins());
      std::printf("  %-22s %10llu | scatter %8.2f %8.2f | roundtrip %8.2f "
                  "%8.2f | %s, plan picked %s%s\n",
                  config, static_cast<unsigned long long>(n), direct.scatter_ns,
                  binned.scatter_ns, direct.round_trip_ns, binned.round_trip_ns,
                  winner, pick,
                  std::strcmp(winner, pick) == 0 ? "" : " [mismatch]");
      if (traj != nullptr) {
        char point[96];
        std::snprintf(point, sizeof(point), "p%u/w%llu", partitions,
                      static_cast<unsigned long long>(n));
        traj->Add("shuffle/scatter/direct", point, direct.scatter_ns,
                  "ns/walker");
        traj->Add("shuffle/scatter/binned", point, binned.scatter_ns,
                  "ns/walker");
        traj->Add("shuffle/roundtrip/direct", point, direct.round_trip_ns,
                  "ns/walker");
        traj->Add("shuffle/roundtrip/binned", point, binned.round_trip_ns,
                  "ns/walker");
      }
    }
  }
}

}  // namespace
}  // namespace fm

int main(int argc, char** argv) {
  // Peel the fm flags before google-benchmark sees (and rejects) them.
  std::string metrics_path;
  std::vector<char*> bench_argv;
  const char* metrics_prefix = "--metrics-json=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], metrics_prefix, std::strlen(metrics_prefix)) ==
        0) {
      metrics_path = argv[i] + std::strlen(metrics_prefix);
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  fm::BenchTrajectory traj("micro_kernels");
  fm::RunShuffleSweep(metrics_path.empty() ? nullptr : &traj);
  if (!metrics_path.empty()) {
    if (!traj.WriteJson(metrics_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote bench trajectory to %s\n",
                 metrics_path.c_str());
  }
  return 0;
}
