// Shared helpers for the per-experiment bench binaries.
//
// Every binary runs with no arguments at CI-friendly sizes and prints the rows /
// series of its paper table or figure. Environment knobs (see README):
//   FM_SCALE    multiplies the stand-in graph sizes        (default 1.0)
//   FM_STEPS    walk length per walker                     (default 24)
//   FM_ROUNDS   walkers = FM_ROUNDS * |V|                  (default 1)
//   FM_THREADS  worker threads                             (default: all cores)
//   FM_SHUFFLE  shuffle backend: direct | binned | auto    (default auto)
//   FM_INTERLEAVE  sample-stage ring depth: 1..64 | auto   (default auto)
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/fm.h"
#include "src/util/env.h"

namespace fm {

// Bench command-line arguments. --metrics-json=FILE asks the binary to write
// its fm-bench-trajectory-v1 JSON (timing points plus hardware-counter samples
// where the perf backend is live); --trace-json=FILE records structured spans
// for the whole run and writes Chrome trace-event / Perfetto JSON on exit (see
// src/util/trace.h and `fmtrace`); --telemetry-jsonl=FILE appends live
// fm-telemetry-v1 registry snapshots every --telemetry-interval-ms (default
// 1000) for `fmmon`. Unknown arguments exit with usage so CI typos fail
// loudly.
struct BenchArgs {
  std::string metrics_path;
  std::string trace_path;
  std::string telemetry_path;
  uint32_t telemetry_interval_ms = 1000;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  const char* metrics_prefix = "--metrics-json=";
  const char* trace_prefix = "--trace-json=";
  const char* telemetry_prefix = "--telemetry-jsonl=";
  const char* interval_prefix = "--telemetry-interval-ms=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], metrics_prefix, std::strlen(metrics_prefix)) ==
        0) {
      args.metrics_path = argv[i] + std::strlen(metrics_prefix);
    } else if (std::strncmp(argv[i], trace_prefix, std::strlen(trace_prefix)) ==
               0) {
      args.trace_path = argv[i] + std::strlen(trace_prefix);
    } else if (std::strncmp(argv[i], telemetry_prefix,
                            std::strlen(telemetry_prefix)) == 0) {
      args.telemetry_path = argv[i] + std::strlen(telemetry_prefix);
    } else if (std::strncmp(argv[i], interval_prefix,
                            std::strlen(interval_prefix)) == 0) {
      args.telemetry_interval_ms = static_cast<uint32_t>(
          std::strtoul(argv[i] + std::strlen(interval_prefix), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s (supported: --metrics-json=FILE "
                   "--trace-json=FILE --telemetry-jsonl=FILE "
                   "--telemetry-interval-ms=N)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  return args;
}

// Starts the background registry-snapshot thread when --telemetry-jsonl was
// given. Returns the writer (inert when the flag is absent); callers let it go
// out of scope at the end of main (the destructor stops the thread and writes
// the final cumulative line) or call Stop() explicitly before reading files.
inline std::unique_ptr<telemetry::TelemetrySnapshotWriter>
MakeBenchTelemetryWriter(const BenchArgs& args) {
  auto writer = std::make_unique<telemetry::TelemetrySnapshotWriter>(
      args.telemetry_path, args.telemetry_interval_ms);
  if (!args.telemetry_path.empty() && !writer->Start()) {
    std::fprintf(stderr, "error: cannot write %s\n",
                 args.telemetry_path.c_str());
    std::exit(1);
  }
  return writer;
}

// Enables span recording when --trace-json was given. Call before the first
// timed work so graph generation and plan solves land in the trace too.
inline void MaybeStartTrace(const BenchArgs& args) {
  if (args.trace_path.empty()) {
    return;
  }
  Tracer::SetThisThreadName("main");
  Tracer::Get().Enable();
}

// Writes the trace recorded since MaybeStartTrace; exits non-zero on I/O
// failure (same contract as MaybeWriteTrajectory).
inline void MaybeWriteTrace(const BenchArgs& args) {
  if (args.trace_path.empty()) {
    return;
  }
  Tracer& tracer = Tracer::Get();
  tracer.Disable();
  if (!tracer.WriteJson(args.trace_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", args.trace_path.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote %llu spans (%llu dropped) to %s\n",
               static_cast<unsigned long long>(tracer.TotalEvents()),
               static_cast<unsigned long long>(tracer.TotalDropped()),
               args.trace_path.c_str());
}

// Writes `traj` to `path` unless path is empty; exits non-zero on I/O failure
// so a CI job uploading the artifact cannot silently pass without it.
inline void MaybeWriteTrajectory(const BenchTrajectory& traj,
                                 const std::string& path) {
  if (path.empty()) {
    return;
  }
  if (!traj.WriteJson(path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote bench trajectory to %s\n", path.c_str());
}

inline uint32_t BenchSteps() {
  return static_cast<uint32_t>(EnvInt64("FM_STEPS", 16));
}

// Paper standard is 10 rounds of |V| walkers (§5.1); default 4 keeps the full
// bench suite CI-friendly while staying in the density regime FlashMob targets.
inline uint32_t BenchRounds() {
  return static_cast<uint32_t>(EnvInt64("FM_ROUNDS", 4));
}

// Machine-calibrated cost model shared by all benches (the paper's offline
// profiling, §4.4): measured once, cached in ./fm_profile.txt, reused across
// graphs and runs.
inline const CostModel& BenchCostModel() {
  static CalibratedCostModel model = CalibratedCostModel::LoadOrCalibrate(
      EnvString("FM_PROFILE", "fm_profile.txt"), DetectCacheInfo(),
      ThreadPool::Global().thread_count());
  return model;
}

// Performance-measurement spec: no path retention, no visit counting.
inline WalkSpec PerfSpec(const CsrGraph& graph,
                         WalkAlgorithm algorithm = WalkAlgorithm::kDeepWalk) {
  WalkSpec spec;
  spec.algorithm = algorithm;
  spec.steps = BenchSteps();
  spec.num_walkers = static_cast<Wid>(BenchRounds()) * graph.num_vertices();
  spec.keep_paths = false;
  if (algorithm == WalkAlgorithm::kNode2Vec) {
    spec.node2vec = {2.0, 0.5};  // common node2vec setting
  }
  return spec;
}

// FM_SHUFFLE env knob; exits loudly on a bad value so CI typos cannot
// silently fall back to the default backend.
inline ShuffleBackendKind BenchShuffleBackend() {
  const std::string name = EnvString("FM_SHUFFLE", "auto");
  ShuffleBackendKind kind = ShuffleBackendKind::kAuto;
  if (!ParseShuffleBackendName(name, &kind)) {
    std::fprintf(stderr, "bad FM_SHUFFLE value: %s (want direct|binned|auto)\n",
                 name.c_str());
    std::exit(2);
  }
  return kind;
}

// FM_INTERLEAVE env knob (sample-stage ring depth; "auto" resolves from cache
// geometry); exits loudly on a bad value, mirroring BenchShuffleBackend.
inline uint32_t BenchInterleaveDepth() {
  const std::string name = EnvString("FM_INTERLEAVE", "auto");
  uint32_t depth = kInterleaveDepthAuto;
  if (!ParseInterleaveDepth(name, &depth)) {
    std::fprintf(stderr, "bad FM_INTERLEAVE value: %s (want 1..%u or auto)\n",
                 name.c_str(), kMaxInterleaveDepth);
    std::exit(2);
  }
  return depth;
}

inline EngineOptions PerfEngineOptions() {
  EngineOptions options;
  options.count_visits = false;
  options.cost_model = &BenchCostModel();
  options.plan.cache = DetectCacheInfo();
  options.shuffle_backend = BenchShuffleBackend();
  options.interleave_depth = BenchInterleaveDepth();
  return options;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* PolicyName(SamplePolicy policy) {
  return policy == SamplePolicy::kPS ? "PS" : "DS";
}

inline std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1fGB", bytes / 1073741824.0);
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / 1048576.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fKB", bytes / 1024.0);
  }
  return buf;
}

}  // namespace fm

#endif  // BENCH_BENCH_UTIL_H_
