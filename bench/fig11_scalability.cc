// Figure 11: scalability with graph size and walker density.
//
// (a) Synthetic graphs with YH's degree distribution at growing |V|: per-step time
//     rises slowly as more partitions fall out of fast caches (paper grows to a
//     168GB graph; here FM_SCALE bounds the top size).
// (b) Growing walker count (1x..8x |V|) on the TW stand-in: higher density means
//     better cache reuse in the sample stage; the benefit saturates around 8|V|
//     (paper: 32.6% per-step sampling cost reduction from 1x to 8x).
#include "bench/bench_util.h"

int main() {
  using namespace fm;
  PrintHeader("Figure 11a: per-step time vs |V| (YH degree distribution)");
  const DatasetSpec& yh = DatasetByName("YH");
  std::printf("%12s %12s %10s %12s\n", "|V|", "|E|", "CSR", "ns/step");
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    CsrGraph g = LoadDataset(yh, scale * EnvDouble("FM_SCALE", 1.0));
    FlashMobEngine engine(g, PerfEngineOptions());
    double ns = engine.Run(PerfSpec(g)).stats.PerStepNs();
    std::printf("%12u %12llu %10s %9.1f ns\n", g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                HumanBytes(g.CsrBytes()).c_str(), ns);
  }
  std::printf("\npaper shape: cost rises gently with |V| as VPs grow and more "
              "adopt DS\n");

  PrintHeader("Figure 11b: effect of walker density (TW stand-in)");
  CsrGraph tw = LoadDataset(DatasetByName("TW"));
  std::printf("%10s %12s %14s %14s\n", "walkers", "density", "sample ns/step",
              "total ns/step");
  double base_sample = 0;
  for (uint32_t mult : {1, 2, 4, 8}) {
    WalkSpec spec = PerfSpec(tw);
    spec.num_walkers = static_cast<Wid>(mult) * tw.num_vertices();
    FlashMobEngine engine(tw, PerfEngineOptions());
    WalkResult result = engine.Run(spec);
    double sample_ns = result.stats.times.sample_s * 1e9 /
                       static_cast<double>(result.stats.total_steps);
    if (mult == 1) {
      base_sample = sample_ns;
    }
    std::printf("%9ux|V| %12.3f %11.1f ns %11.1f ns  (sample vs 1x: %+.1f%%)\n",
                mult, result.stats.walker_density, sample_ns,
                result.stats.PerStepNs(),
                (sample_ns - base_sample) / base_sample * 100);
  }
  std::printf("\npaper: 32.6%% sampling-cost reduction at 8|V| vs |V|, then "
              "flattening\n");
  return 0;
}
