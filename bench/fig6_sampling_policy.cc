// Figure 6: per-step sample time for PS/DS x cache level x degree x density.
//
// The offline profiling microbenchmark (§4.4): synthetic uniform-degree VPs sized
// so the policy's working set targets L1, L2, L3, or DRAM, degrees 16..1024,
// densities 1 and 0.25 walker/edge. Expected shapes (§4.2 observations 1-4):
// faster caches win; PS improves with degree while DS is flat; density helps
// in-cache; PS-DRAM is the worst combination.
#include "bench/bench_util.h"
#include "src/core/profiler.h"

int main() {
  using namespace fm;
  const CacheInfo& info = DetectCacheInfo();
  AnalyticCostModel sizing(info);

  const Degree degrees[] = {16, 64, 256, 1024};
  struct Level {
    const char* name;
    uint64_t budget;
  } levels[] = {{"L1", 0}, {"L2", 0}, {"L3", 0}, {"DRAM", 0}};
  levels[0].budget = info.l1_bytes / 2;
  levels[1].budget = info.l2_bytes / 2;
  levels[2].budget = info.l3_bytes / 2;
  levels[3].budget = info.l3_bytes * static_cast<uint64_t>(EnvInt64("FM_FIG6_DRAM_X", 4));

  for (double density : {1.0, 0.25}) {
    PrintHeader(std::string("Figure 6: sample ns/step at density ") +
                (density == 1.0 ? "1.0" : "0.25") + " walker/edge");
    std::printf("%-10s", "degree");
    for (const auto& level : levels) {
      std::printf("  PS-%-6s DS-%-6s", level.name, level.name);
    }
    std::printf("\n");
    for (Degree degree : degrees) {
      std::printf("%-10u", degree);
      for (const auto& level : levels) {
        for (SamplePolicy policy : {SamplePolicy::kPS, SamplePolicy::kDS}) {
          uint64_t per_vertex = policy == SamplePolicy::kPS
                                    ? (4 + kCacheLineBytes)
                                    : (static_cast<uint64_t>(degree) * 4 + 8);
          // High-degree DS rows need very few vertices to fill a cache level;
          // allow tiny VPs (floor of 4) so the L1 column stays honest.
          uint64_t vertices = std::max<uint64_t>(level.budget / per_vertex, 4);
          // Cap edge count so the DRAM row stays tractable on small boxes.
          uint64_t max_edges =
              static_cast<uint64_t>(EnvInt64("FM_FIG6_MAX_EDGES", 16 << 20));
          if (vertices * degree > max_edges) {
            vertices = std::max<uint64_t>(max_edges / degree, 64);
          }
          double ns = MeasureSamplePointNs(static_cast<Vid>(vertices), degree,
                                           density, policy, 7, 2);
          std::printf("  %8.2f ", ns);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\npaper shapes: all curves drop toward L1; PS falls with degree, DS flat;\n"
      "density 1.0 beats 0.25 in-cache; PS-DRAM is the slowest series.\n");
  return 0;
}
