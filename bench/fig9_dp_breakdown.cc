// Figure 9: effectiveness of the DP-based optimization.
//
// (a) Stage time breakdown (sample / shuffle / other) under the DP-identified plan
//     for each graph — the paper's point: once sampling is cache-resident, shuffle
//     cost is comparable to sampling.
// (b) Total per-step time of the DP plan vs Uniform-2048-PS, Uniform-2048-DS, and
//     the pre-MCKP "Manual Opt" heuristic. Paper: DP wins across all graphs.
#include "bench/bench_util.h"

namespace fm {
namespace {

double RunWithPlan(const CsrGraph& g, PartitionPlan plan, StageTimes* times) {
  FlashMobEngine engine(g, PerfEngineOptions());
  engine.SetPlan(std::move(plan));
  WalkResult result = engine.Run(PerfSpec(g));
  if (times != nullptr) {
    *times = result.stats.times;
  }
  return result.stats.PerStepNs();
}

}  // namespace
}  // namespace fm

int main() {
  using namespace fm;
  PrintHeader("Figure 9a: stage breakdown under the DP-identified plan");
  std::printf("%-5s %10s %10s %10s %12s\n", "graph", "sample%", "shuffle%",
              "other%", "ns/step");

  const CostModel& model = BenchCostModel();
  PartitionPlan::Config plan_config;
  plan_config.cache = DetectCacheInfo();
  plan_config.threads_sharing_l3 = ThreadPool::Global().thread_count();

  std::vector<std::string> names;
  std::vector<double> dp_ns, ps_ns, ds_ns, manual_ns;
  for (const DatasetSpec& spec : AllDatasets()) {
    CsrGraph g = LoadDataset(spec);
    Wid walkers = static_cast<Wid>(BenchRounds()) * g.num_vertices();

    StageTimes times;
    PartitionPlan dp_plan =
        PartitionPlan::BuildOptimized(g, walkers, model, plan_config);
    double dp = RunWithPlan(g, std::move(dp_plan), &times);
    double total = times.Total();
    std::printf("%-5s %9.1f%% %9.1f%% %9.1f%% %9.1f ns\n", spec.name.c_str(),
                times.sample_s / total * 100, times.shuffle_s / total * 100,
                times.other_s / total * 100, dp);

    names.push_back(spec.name);
    dp_ns.push_back(dp);
    ps_ns.push_back(RunWithPlan(
        g, PartitionPlan::BuildUniform(g, 2048, SamplePolicy::kPS), nullptr));
    ds_ns.push_back(RunWithPlan(
        g, PartitionPlan::BuildUniform(g, 2048, SamplePolicy::kDS), nullptr));
    manual_ns.push_back(RunWithPlan(
        g, PartitionPlan::BuildManualHeuristic(g, walkers, plan_config), nullptr));
  }

  PrintHeader("Figure 9b: DP plan vs uniform strategies vs manual heuristic");
  std::printf("%-5s %10s %12s %12s %12s\n", "graph", "DP", "Uniform-PS",
              "Uniform-DS", "ManualOpt");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%-5s %7.1f ns %9.1f ns %9.1f ns %9.1f ns\n", names[i].c_str(),
                dp_ns[i], ps_ns[i], ds_ns[i], manual_ns[i]);
  }
  std::printf("\npaper: the DP solution beats both uniform strategies and the "
              "manual heuristic on every graph\n");
  return 0;
}
