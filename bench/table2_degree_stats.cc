// Table 2: DeepWalk visit statistics by degree percentile group.
//
// For each of the five stand-in graphs, runs |V| walkers x FM_STEPS steps of
// DeepWalk (walkers seeded uniformly over edges, as in §3) and reports, per degree
// bucket (<1%, 1-5%, 5-25%, 25-100% of vertices by degree rank): average degree,
// share of edges, share of walker visits. Key paper observations to reproduce:
// top-1% vertices absorb ~half the visits on the skewed graphs, and each bucket's
// visit share tracks its edge share.
#include "bench/bench_util.h"

int main() {
  using namespace fm;
  PrintHeader("Table 2: DeepWalk statistics by degree groups");
  std::printf("%-4s %-3s %10s %10s %10s %10s\n", "Grph", "", "<1%", "1%~5%",
              "5%~25%", "25%~100%");

  for (const DatasetSpec& spec : AllDatasets()) {
    CsrGraph g = LoadDataset(spec);
    WalkSpec walk;
    walk.steps = BenchSteps();
    walk.num_walkers = g.num_vertices();
    walk.keep_paths = false;
    FlashMobEngine engine(g);  // count_visits defaults on
    WalkResult result = engine.Run(walk);
    DegreeBucketStats stats = ComputeDegreeBucketStats(g, result.visit_counts);

    std::printf("%-4s %-3s", spec.name.c_str(), "D");
    for (size_t b = 0; b < kDegreeBuckets; ++b) {
      std::printf(" %10.1f", stats.avg_degree[b]);
    }
    std::printf("\n%-4s %-3s", "", "E");
    for (size_t b = 0; b < kDegreeBuckets; ++b) {
      std::printf(" %9.1f%%", stats.edge_share[b] * 100);
    }
    std::printf("\n%-4s %-3s", "", "W");
    for (size_t b = 0; b < kDegreeBuckets; ++b) {
      std::printf(" %9.1f%%", stats.visit_share[b] * 100);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper reference (E%% of top bucket): YT 39.0, TW 49.1, FS 18.7, UK 46.4, "
      "YH 46.5\n");
  return 0;
}
