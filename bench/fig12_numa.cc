// Figure 12: cross-socket walk — graph partitioning (FlashMob-P) vs replication
// (FlashMob-R).
//
// Emulated on a SocketTopology (DESIGN.md §3): each mode's DRAM budget determines
// its walkers-per-episode (and so its walker density); per-step time is measured at
// that density, and mode P's remote-stream fraction is computed structurally.
// Paper findings to reproduce: (a) similar per-step times; (b) mode P roughly
// doubles walker density because the graph is stored once.
#include "bench/bench_util.h"

int main() {
  using namespace fm;
  PrintHeader("Figure 12: NUMA modes — FlashMob-P vs FlashMob-R (emulated)");
  std::printf("%-5s | %12s %12s | %12s %12s | %8s\n", "graph", "P ns/step",
              "R ns/step", "P density", "R density", "P remote");

  for (const DatasetSpec& spec : AllDatasets()) {
    CsrGraph g = LoadDataset(spec);
    SocketTopology topo;
    topo.sockets = static_cast<uint32_t>(EnvInt64("FM_SOCKETS", 2));
    // Budget chosen so the walker allotment binds: 3x the CSR per socket.
    topo.dram_per_socket_bytes =
        std::max<uint64_t>(g.CsrBytes() * 3, 64ull << 20);

    WalkSpec spec_walk;
    spec_walk.steps = BenchSteps();
    spec_walk.num_walkers = static_cast<Wid>(g.num_vertices()) * 16;
    spec_walk.keep_paths = false;

    EngineOptions options = PerfEngineOptions();
    NumaRunResult p =
        RunNumaWalk(g, spec_walk, NumaMode::kPartitioned, topo, options);
    NumaRunResult r =
        RunNumaWalk(g, spec_walk, NumaMode::kReplicated, topo, options);
    std::printf("%-5s | %9.1f ns %9.1f ns | %12.3f %12.3f | %7.1f%%\n",
                spec.name.c_str(), p.per_step_ns, r.per_step_ns,
                p.walker_density, r.walker_density,
                p.remote_stream_fraction * 100);
  }
  std::printf(
      "\npaper: P and R show similar per-step time; P nearly doubles walker "
      "density (Fig 12b);\nP's remote accesses are streaming-only (0.0023 and "
      "0.0011 remote-miss accesses/step on FS/UK).\n");
  return 0;
}
