// Table 1: load latency from memory hierarchy levels, by access pattern.
//
// Measures sequential / random / pointer-chasing load latency over working sets
// sized to L1 / L2 / L3 / DRAM on this machine, side by side with the paper's Xeon
// Gold 6126 numbers. The paper's takeaways this table must reproduce:
//   (1) sequential accesses stay cheap at every level,
//   (2) the sequential-vs-random gap explodes at DRAM (~24x in the paper),
//   (3) pointer-chasing in L3 is slower than random DRAM reads.
#include "bench/bench_util.h"
#include "src/cachesim/latency_model.h"
#include "src/mem/membench.h"
#include "src/util/cache_info.h"

int main(int argc, char** argv) {
  using namespace fm;
  BenchArgs args = ParseBenchArgs(argc, argv);
  MaybeStartTrace(args);
  auto telemetry_writer = MakeBenchTelemetryWriter(args);
  PrintHeader("Table 1: Load latency from memory hierarchy levels (ns/load)");

  const CacheInfo& info = DetectCacheInfo();
  std::printf("machine caches: L1=%s L2=%s L3=%s\n", HumanBytes(info.l1_bytes).c_str(),
              HumanBytes(info.l2_bytes).c_str(), HumanBytes(info.l3_bytes).c_str());

  MemBenchConfig config;
  config.min_total_accesses = static_cast<uint64_t>(EnvInt64("FM_MEM_ACCESSES", 1 << 22));

  // One measured pass per cell collects the timing and the hardware counters
  // bracketing exactly the access loop, so the LLC-miss table below is
  // *measured* (perf_event_open), not derived from the cache model.
  MemLatencyTable table{};
  table.working_set_bytes[0] = info.l1_bytes / 2;
  table.working_set_bytes[1] = info.l2_bytes / 2;
  table.working_set_bytes[2] = info.l3_bytes / 2;
  table.working_set_bytes[3] = info.l3_bytes * 8;
  MemAccessProfile profiles[3][4];
  bool counters_live = false;
  for (int p = 0; p < 3; ++p) {
    for (int l = 0; l < 4; ++l) {
      profiles[p][l] = MeasureLoadLatencyProfile(static_cast<AccessPattern>(p),
                                                 table.working_set_bytes[l],
                                                 config);
      table.ns[p][l] = profiles[p][l].ns_per_access;
      counters_live = counters_live || profiles[p][l].counters_active;
    }
  }

  const char* patterns[3] = {"Sequential read", "Random read", "Pointer-chasing"};
  std::printf("\n%-17s %10s %10s %10s %10s\n", "Location", "L1C", "L2C", "L3C",
              "LocalMem");
  std::printf("%-17s %10s %10s %10s %10s\n", "(working set)",
              HumanBytes(table.working_set_bytes[0]).c_str(),
              HumanBytes(table.working_set_bytes[1]).c_str(),
              HumanBytes(table.working_set_bytes[2]).c_str(),
              HumanBytes(table.working_set_bytes[3]).c_str());
  for (int p = 0; p < 3; ++p) {
    std::printf("%-17s", patterns[p]);
    for (int l = 0; l < 4; ++l) {
      std::printf(" %8.2fns", table.ns[p][l]);
    }
    std::printf("\n");
  }

  std::printf("\nmeasured LLC misses per access (perf backend: %s):\n",
              counters_live ? "perf" : "noop");
  for (int p = 0; p < 3; ++p) {
    std::printf("%-17s", patterns[p]);
    for (int l = 0; l < 4; ++l) {
      const MemAccessProfile& prof = profiles[p][l];
      double per_access =
          prof.accesses == 0
              ? 0
              : static_cast<double>(prof.counters.llc_misses()) /
                    static_cast<double>(prof.accesses);
      std::printf(" %8.4f  ", per_access);
    }
    std::printf("\n");
  }

  std::printf("\npaper (Xeon Gold 6126), local columns:\n");
  for (int p = 0; p < 3; ++p) {
    std::printf("%-17s", patterns[p]);
    for (int l = 0; l < 4; ++l) {
      std::printf(" %8.2fns", Table1Reference::kNs[p][l]);
    }
    std::printf("\n");
  }

  double seq_dram = table.ns[0][3];
  double rand_dram = table.ns[1][3];
  double chase_l3 = table.ns[2][2];
  std::printf("\nshape checks: random/seq gap at DRAM = %.1fx (paper: %.1fx);\n",
              rand_dram / seq_dram, 18.35 / 0.76);
  std::printf("pointer-chase@L3 %s random@DRAM (paper: slower)\n",
              chase_l3 > rand_dram ? "slower than" : "faster than");

  if (!args.metrics_path.empty()) {
    BenchTrajectory traj("table1_memory_latency");
    traj.set_backend(counters_live ? "perf" : "noop");
    const char* levels[4] = {"L1C", "L2C", "L3C", "LocalMem"};
    const char* series[3] = {"table1/sequential", "table1/random",
                             "table1/pointer_chase"};
    for (int p = 0; p < 3; ++p) {
      for (int l = 0; l < 4; ++l) {
        traj.Add(series[p], levels[l], table.ns[p][l], "ns/access");
        traj.AddCounters(std::string(series[p]) + "/" + levels[l],
                         profiles[p][l].counters);
      }
    }
    MaybeWriteTrajectory(traj, args.metrics_path);
  }
  MaybeWriteTrace(args);
  return 0;
}
