// Design-choice ablations (beyond the paper's figures, backing its §5.2 claims and
// DESIGN.md's decisions):
//  A. RNG: KnightKing with Mersenne Twister vs xorshift* (§5.2 measured this swap
//     at +4% / +9% on FS / UK — compute is not the bottleneck).
//  B. Uniform-degree DS fast path vs general CSR indexing (§5.2: regular data
//     structures for low-degree partitions cut L2/L3 misses by 33%/30% on UK);
//     measured with the cache simulator.
//  C. Degree-sorted vertex order vs shuffled labels under the same plan shape (the
//     §4.1 frequency-grouping premise).
//  D. Exclusive vs inclusive LLC for FlashMob's access stream (§2.3's architecture
//     argument), via the cache simulator.
//  E. Identity tracking (reverse shuffle) vs identity-free walking (this repo's
//     extension; see walk_spec.h).
#include "bench/bench_util.h"
#include "src/core/shuffle.h"

namespace fm {
namespace {

double KnightKingNs(const CsrGraph& g, bool mersenne) {
  BaselineOptions options;
  options.count_visits = false;
  options.use_mersenne = mersenne;
  KnightKingEngine engine(g, options);
  return engine.Run(PerfSpec(g)).stats.PerStepNs();
}

}  // namespace
}  // namespace fm

int main() {
  using namespace fm;
  CsrGraph tw = LoadDataset(DatasetByName("TW"));
  CsrGraph uk = LoadDataset(DatasetByName("UK"));

  PrintHeader("Ablation A: KnightKing RNG — Mersenne Twister vs xorshift*");
  for (const auto* pair : {&tw, &uk}) {
    const CsrGraph& g = *pair;
    double mt = KnightKingNs(g, true);
    double xs = KnightKingNs(g, false);
    std::printf("  %s: MT %.1f ns/step, xorshift* %.1f ns/step (%+.1f%%)\n",
                (&g == &tw) ? "TW" : "UK", mt, xs, (mt - xs) / xs * 100);
  }
  std::printf("  paper: swapping KnightKing to xorshift* gains only 4-9%% — it is "
              "data-bound, not compute-bound\n");

  PrintHeader("Ablation B: uniform-degree DS fast path vs general CSR (simulated)");
  {
    // Degree-2 tail: direct-index vs offset-lookup access, same walk.
    CsrGraph g = GenerateUniformDegreeGraph(400000, 2, 5);
    WalkSpec spec;
    spec.steps = 4;
    spec.num_walkers = 200000;
    spec.keep_paths = false;
    for (bool fast_path : {true, false}) {
      PartitionPlan plan = PartitionPlan::BuildUniform(g, 64, SamplePolicy::kDS);
      if (!fast_path) {
        for (uint32_t i = 0; i < plan.num_vps(); ++i) {
          const_cast<VertexPartition&>(plan.vp(i)).uniform_degree = false;
        }
      }
      CacheHierarchy sim;
      EngineOptions options;
      options.count_visits = false;
      FlashMobEngine engine(g, options);
      engine.SetPlan(std::move(plan));
      WalkResult run = engine.RunInstrumented(spec, &sim);
      const CacheCounters& c = sim.counters();
      std::printf("  %-22s: %.2f L2-miss/step, %.2f L3-miss/step\n",
                  fast_path ? "direct indexing" : "general CSR",
                  static_cast<double>(c.misses[1]) / run.stats.total_steps,
                  static_cast<double>(c.misses[2]) / run.stats.total_steps);
    }
    std::printf("  paper: regular structures cut L2/L3 misses 33%%/30%% (UK), "
                "13%%/20%% (FS)\n");
  }

  PrintHeader("Ablation C: degree-sorted order vs shuffled labels");
  {
    PowerLawConfig config;
    config.degrees.num_vertices = 400000;
    config.degrees.avg_degree = 16;
    config.degrees.alpha = 0.85;
    config.degrees.max_degree = 400000 / 16;
    CsrGraph sorted_graph = GeneratePowerLawGraph(config);
    config.shuffle_labels = true;
    CsrGraph shuffled = GeneratePowerLawGraph(config);
    // Same uniform plan shape on both; only the vertex order differs, so the gap
    // is the value of frequency-aware grouping (hot vertices packed together).
    WalkSpec spec;
    spec.steps = BenchSteps();
    spec.num_walkers = static_cast<Wid>(BenchRounds()) * 400000;
    spec.keep_paths = false;
    auto run_uniform = [&](const CsrGraph& g) {
      EngineOptions options;
      options.count_visits = false;
      FlashMobEngine engine(g, options);
      engine.SetPlan(PartitionPlan::BuildUniform(g, 1024, SamplePolicy::kDS));
      return engine.Run(spec).stats.PerStepNs();
    };
    // The shuffled graph violates the engine's sorted-input contract on purpose;
    // re-sort it with identity *sizes* is not possible via public API, so compare
    // sorted-input vs DegreeSort(shuffled) == sorted (sanity) and report.
    double sorted_ns = run_uniform(sorted_graph);
    double resorted_ns = run_uniform(DegreeSort(shuffled).graph);
    std::printf("  degree-sorted: %.1f ns/step | resorted-from-shuffled: %.1f "
                "ns/step (should match)\n",
                sorted_ns, resorted_ns);
  }

  PrintHeader("Ablation D: exclusive vs inclusive LLC (simulated FlashMob stream)");
  {
    CsrGraph g = LoadDataset(DatasetByName("YT"));
    WalkSpec spec;
    spec.steps = 4;
    spec.num_walkers = 150000;
    spec.keep_paths = false;
    for (bool exclusive : {true, false}) {
      CacheInfo info = PaperCacheInfo();
      info.l3_exclusive = exclusive;
      CacheHierarchy sim(info);
      EngineOptions options;
      options.count_visits = false;
      FlashMobEngine engine(g, options);
      WalkResult run = engine.RunInstrumented(spec, &sim);
      LatencyModel lat;
      std::printf("  %-10s LLC: %.2f DRAM-access/step, est. data time %.1f "
                  "ns/step\n",
                  exclusive ? "exclusive" : "inclusive",
                  static_cast<double>(sim.counters().hits[3]) /
                      run.stats.total_steps,
                  lat.TotalNs(sim.counters()) / run.stats.total_steps);
    }
    std::printf("  paper §2.3: the Skylake exclusive LLC lets L2+L3 hold disjoint "
                "data, favoring L2-sized VPs\n");
  }

  PrintHeader("Ablation E: identity tracking (reverse shuffle) vs identity-free");
  {
    for (const auto* pair : {&tw, &uk}) {
      const CsrGraph& g = *pair;
      WalkSpec spec = PerfSpec(g);
      EngineOptions options = PerfEngineOptions();
      FlashMobEngine engine(g, options);
      double tracked = engine.Run(spec).stats.PerStepNs();
      spec.track_identity = false;
      FlashMobEngine engine2(g, options);
      double anonymous = engine2.Run(spec).stats.PerStepNs();
      std::printf("  %s: tracked %.1f ns/step, identity-free %.1f ns/step "
                  "(%.1f%% saved)\n",
                  (&g == &tw) ? "TW" : "UK", tracked, anonymous,
                  (tracked - anonymous) / tracked * 100);
    }
    std::printf("  extension: dropping the Gather pass trades per-walker paths "
                "for one less streaming pass\n");
  }

  PrintHeader("Ablation F: weighted (alias-table) vs uniform transitions");
  {
    PowerLawConfig config;
    config.degrees.num_vertices = 800000;
    config.degrees.avg_degree = 20;
    config.degrees.alpha = 0.8;
    config.degrees.max_degree = 800000 / 16;
    config.random_weights = true;
    CsrGraph g = GeneratePowerLawGraph(config);
    WalkSpec spec = PerfSpec(g);
    EngineOptions options = PerfEngineOptions();
    FlashMobEngine engine(g, options);
    double uniform = engine.Run(spec).stats.PerStepNs();
    spec.use_edge_weights = true;
    double weighted = engine.Run(spec).stats.PerStepNs();
    BaselineOptions base_options;
    base_options.count_visits = false;
    KnightKingEngine knk(g, base_options);
    double knk_weighted = knk.Run(spec).stats.PerStepNs();
    std::printf("  FlashMob uniform %.1f ns/step | FlashMob weighted %.1f ns/step "
                "(+%.0f%%) | KnightKing weighted %.1f ns/step\n",
                uniform, weighted, (weighted - uniform) / uniform * 100,
                knk_weighted);
    std::printf("  weighted draws add one alias-table read per sample; the same "
                "VP locality bounds it\n");
  }
  return 0;
}
